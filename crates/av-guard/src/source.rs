//! Source-file preparation: allow-annotation parsing, `#[cfg(test)]`
//! stripping, function-span discovery, and the workspace walker.

use crate::lexer::{self, Kind, Tok};

/// One parsed `// av-guard: allow(<rule>, reason = "...")` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line of the comment. The allow suppresses findings on
    /// this line and the line directly below (annotation-above style).
    pub line: u32,
    /// Rule ID the allow names.
    pub rule: String,
    /// The mandatory written justification.
    pub reason: String,
}

/// A malformed annotation (missing reason, bad syntax) — reported as a
/// `G0` finding, never honored.
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// A function's name and the token ranges of its signature and body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
}

/// A file ready for rule passes: test code stripped, allows parsed.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (rule scopes match against this).
    pub rel_path: String,
    /// Non-test, non-comment tokens.
    pub tokens: Vec<Tok>,
    /// Well-formed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed annotations (become `G0` findings).
    pub bad_allows: Vec<BadAllow>,
    /// Function spans over `tokens`.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lex and prepare one file's text.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let out = lexer::lex(text);
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        for c in &out.comments {
            match parse_allow(&c.text) {
                None => {}
                Some(Ok((rule, reason))) => allows.push(Allow {
                    line: c.line,
                    rule,
                    reason,
                }),
                Some(Err(message)) => bad_allows.push(BadAllow {
                    line: c.line,
                    message,
                }),
            }
        }
        let tokens = strip_test_code(out.tokens);
        let fns = find_fns(&tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            allows,
            bad_allows,
            fns,
        }
    }

    /// The name of the function whose body contains token `idx`, if any.
    /// With nested `fn` items the innermost wins.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&str> {
        self.fns
            .iter()
            .rfind(|f| f.body_start <= idx && idx < f.body_end)
            .map(|f| f.name.as_str())
    }

    /// Like [`enclosing_fn`](Self::enclosing_fn), but the span includes
    /// the signature — a sanctioned float boundary's `x: f64` parameter
    /// is part of the boundary.
    pub fn enclosing_fn_with_sig(&self, idx: usize) -> Option<&str> {
        self.fns
            .iter()
            .rfind(|f| f.sig_start <= idx && idx < f.body_end)
            .map(|f| f.name.as_str())
    }
}

/// Parse an allow annotation out of one comment's text.
///
/// Returns `None` for comments that are not av-guard directives,
/// `Some(Ok((rule, reason)))` for a well-formed allow, and
/// `Some(Err(why))` for a malformed one.
fn parse_allow(text: &str) -> Option<Result<(String, String), String>> {
    // Doc comments (`///` → text starts with `/`, `//!` → `!`) are
    // documentation *about* the directive, never the directive itself.
    if text.starts_with('/') || text.starts_with('!') {
        return None;
    }
    let idx = text.find("av-guard:")?;
    let rest = text[idx + "av-guard:".len()..].trim();
    let Some(body) = rest.strip_prefix("allow(") else {
        return Some(Err(format!(
            "unrecognized av-guard directive (expected `allow(<rule>, reason = \"...\")`): {rest}"
        )));
    };
    let Some(comma) = body.find(',') else {
        return Some(Err(
            "allow annotation is missing its mandatory `reason = \"...\"`".to_string(),
        ));
    };
    let rule = body[..comma].trim().to_string();
    if rule.is_empty() {
        return Some(Err("allow annotation names no rule".to_string()));
    }
    let after = body[comma + 1..].trim_start();
    let Some(after) = after.strip_prefix("reason") else {
        return Some(Err(
            "allow annotation is missing its mandatory `reason = \"...\"`".to_string(),
        ));
    };
    let after = after.trim_start();
    let Some(after) = after.strip_prefix('=') else {
        return Some(Err("allow reason must be `reason = \"...\"`".to_string()));
    };
    let after = after.trim_start();
    let Some(after) = after.strip_prefix('"') else {
        return Some(Err("allow reason must be a quoted string".to_string()));
    };
    // The reason runs to the last quote (reasons may contain parens).
    let Some(endq) = after.rfind('"') else {
        return Some(Err("allow reason string is unterminated".to_string()));
    };
    let reason = after[..endq].trim().to_string();
    if reason.is_empty() {
        return Some(Err(
            "allow annotation has an empty reason — write down why".to_string()
        ));
    }
    if !after[endq + 1..].trim_start().starts_with(')') {
        return Some(Err(
            "allow annotation is missing its closing `)`".to_string()
        ));
    }
    Some(Ok((rule, reason)))
}

/// Remove `#[cfg(test)]`-attributed items and `#[test]` functions from
/// the token stream. The item after the attribute (plus any further
/// attributes) is skipped to its closing `}` or terminating `;`.
fn strip_test_code(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut keep = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(&tokens, i) {
            // Skip any further attributes stacked on the same item.
            let mut j = attr_end;
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(&tokens, j);
            }
            i = skip_item(&tokens, j);
            continue;
        }
        keep.push(tokens[i].clone());
        i += 1;
    }
    keep
}

/// If tokens at `i` start `#[cfg(test)]` or `#[test]`, return the index
/// one past the closing `]`.
fn match_test_attr(tokens: &[Tok], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let t2 = tokens.get(i + 2)?;
    if t2.is_ident("test") && tokens.get(i + 3)?.is_punct(']') {
        return Some(i + 4);
    }
    if t2.is_ident("cfg")
        && tokens.get(i + 3)?.is_punct('(')
        && tokens.get(i + 4)?.is_ident("test")
        && tokens.get(i + 5)?.is_punct(')')
        && tokens.get(i + 6)?.is_punct(']')
    {
        return Some(i + 7);
    }
    None
}

/// Skip one `#[...]` attribute starting at the `#`; returns the index
/// one past the matching `]`.
fn skip_attr(tokens: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if j >= tokens.len() || !tokens[j].is_punct('[') {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skip one item starting at `i`: to the matching `}` of its first
/// top-level brace block, or to the first `;` before any brace opens.
fn skip_item(tokens: &[Tok], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Find every `fn` item's name and body token range.
fn find_fns(tokens: &[Tok]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == Kind::Ident {
                    // Find the body `{` — or a `;` first (trait method
                    // declaration, no body).
                    let mut j = i + 2;
                    let mut body = None;
                    while j < tokens.len() {
                        if tokens[j].is_punct('{') {
                            body = Some(j);
                            break;
                        }
                        if tokens[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    if let Some(start) = body {
                        let mut depth = 0i32;
                        let mut k = start;
                        while k < tokens.len() {
                            if tokens[k].is_punct('{') {
                                depth += 1;
                            } else if tokens[k].is_punct('}') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            k += 1;
                        }
                        fns.push(FnSpan {
                            name: name_tok.text.clone(),
                            sig_start: i,
                            body_start: start,
                            body_end: (k + 1).min(tokens.len()),
                        });
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_parse_and_misparse() {
        assert!(parse_allow("just a comment").is_none());
        assert!(parse_allow("/ doc text: av-guard: allow(G3, reason = \"x\")").is_none());
        assert!(parse_allow("! doc text: av-guard: allow(G3)").is_none());
        let ok =
            parse_allow(r#" av-guard: allow(G3, reason = "shutdown path (already drained)") "#)
                .unwrap()
                .unwrap();
        assert_eq!(ok.0, "G3");
        assert_eq!(ok.1, "shutdown path (already drained)");
        assert!(parse_allow(" av-guard: allow(G3)").unwrap().is_err());
        assert!(parse_allow(r#" av-guard: allow(G3, reason = "")"#)
            .unwrap()
            .is_err());
        assert!(parse_allow(" av-guard: deny(G3)").unwrap().is_err());
    }

    #[test]
    fn test_mods_and_test_fns_are_stripped() {
        let src = r#"
            fn live() { let x = 1; }
            #[cfg(test)]
            mod tests {
                #[test]
                fn gone() { panic!("in test"); }
            }
            #[test]
            fn also_gone() { let y = 2; }
            fn live_too() {}
        "#;
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<_> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "live_too"]);
        assert!(!f.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn enclosing_fn_resolves() {
        let f = SourceFile::parse("x.rs", "fn a() { inner(); } fn b() { other(); }");
        let idx = f.tokens.iter().position(|t| t.is_ident("other")).unwrap();
        assert_eq!(f.enclosing_fn(idx), Some("b"));
    }
}
