//! G2 fixture: a direct filesystem call carrying a justified allow.

fn touch(path: &std::path::Path) {
    // av-guard: allow(G2, reason = "fixture: direct fs call exercising the escape hatch")
    let _ = std::fs::remove_file(path);
}
