//! G2 fixture: the same operation routed through the `Storage` trait —
//! the sanctioned durable-I/O boundary.

fn touch(storage: &dyn Storage, path: &std::path::Path) {
    let _ = storage.remove(path);
}
