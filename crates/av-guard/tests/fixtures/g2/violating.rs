//! G2 fixture: direct `std::fs` use inside a storage-boundary crate.

fn touch(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
}
