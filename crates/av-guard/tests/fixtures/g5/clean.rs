//! G5 fixture: the sanctioned shapes — blocking receive inside the
//! exempt worker loop, and the poller's own bounded wait.

fn worker_loop(rx: &Receiver<u64>) {
    while let Ok(_job) = rx.recv() {}
}

fn tick(poller: &Poller, events: &mut Events) {
    let _ = poller.wait(events);
}
