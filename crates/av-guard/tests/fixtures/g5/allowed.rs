//! G5 fixture: a blocking join carrying a justified allow.

fn shutdown(handle: JoinHandle<()>) {
    // av-guard: allow(G5, reason = "fixture: joining an exited worker exercising the escape hatch")
    let _ = handle.join();
}
