//! G5 fixture: a blocking channel receive inside reactor code.

fn tick(rx: &Receiver<u64>) {
    let job = rx.recv();
    let _ = job;
}
