//! G4 fixture: a float boundary carrying a justified allow.

// av-guard: allow(G4, reason = "fixture: presentation-side float exercising the escape hatch")
fn ratio(n: u64, d: u64) -> f64 { n as f64 / d.max(1) as f64 }
