//! G4 fixture: fixed-point integer arithmetic and sorted iteration — the
//! deterministic forms of the patterns `violating.rs` flags.

fn ratio_fp(n: u64, d: u64) -> u64 {
    (n << 32) / d.max(1)
}

fn persist_patterns(map: &HashMap<String, u64>, out: &mut Vec<u8>) {
    let mut keys: Vec<&String> = map.keys().collect();
    keys.sort();
    for k in keys {
        out.extend_from_slice(k.as_bytes());
    }
}
