//! G4 fixture: float arithmetic in an accumulator module and unsorted
//! `HashMap` iteration feeding a persist path.

fn ratio(n: u64, d: u64) -> f64 {
    n as f64 / d as f64
}

fn persist_patterns(map: &HashMap<String, u64>, out: &mut Vec<u8>) {
    for (k, v) in map.iter() {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}
