//! G1 fixture: the same two locks taken in ascending rank order, plus a
//! temporary that releases at its statement's end.

fn ascending(d: &Svc) {
    let mut wal = d.wal.lock().expect("wal poisoned");
    let catalog = d.catalog.write().expect("catalog poisoned");
    wal.append(catalog.len());
}

fn temporary_then_lower(d: &Svc) {
    let n = d.catalog.read().expect("catalog poisoned").len();
    let mut wal = d.wal.lock().expect("wal poisoned");
    wal.append(n);
}
