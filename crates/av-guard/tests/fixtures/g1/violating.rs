//! G1 fixture: `catalog` (rank 70) is held while `wal` (rank 20) is
//! acquired — a hierarchy inversion.

fn inverted(d: &Svc) {
    let catalog = d.catalog.write().expect("catalog poisoned");
    let mut wal = d.wal.lock().expect("wal poisoned");
    wal.append(catalog.len());
}
