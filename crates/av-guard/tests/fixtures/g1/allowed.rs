//! G1 fixture: the inversion from `violating.rs` carrying a justified
//! allow directive.

fn inverted(d: &Svc) {
    let catalog = d.catalog.write().expect("catalog poisoned");
    // av-guard: allow(G1, reason = "fixture: deliberate inversion exercising the escape hatch")
    let mut wal = d.wal.lock().expect("wal poisoned");
    wal.append(catalog.len());
}
