//! G3 fixture: the same lookups written panic-free.

fn safe(values: &[u64], i: usize) -> u64 {
    let first = values.first().copied().unwrap_or(0);
    first + values.get(i).copied().unwrap_or(0)
}
