//! G3 fixture: panic paths (unwrap + slice index) in server code.

fn risky(values: &[u64], i: usize) -> u64 {
    let first = values.first().unwrap();
    first + values[i]
}
