//! G3 fixture: an unwrap carrying a justified allow.

fn risky(values: &[u64]) -> u64 {
    // av-guard: allow(G3, reason = "fixture: unwrap on a len-checked slice exercising the escape hatch")
    *values.first().unwrap()
}
