//! Per-rule fixture tests: every rule has a violating fixture (caught),
//! a clean fixture (silent), and an allow-annotated fixture (suppressed
//! with the allow counted as honored).
//!
//! Fixtures are plain `.rs` files under `tests/fixtures/<rule>/` — never
//! compiled, only lexed by the scanner. Each is scanned under a
//! *masqueraded* workspace-relative path chosen to land in exactly the
//! rule's scope (e.g. the G5 fixtures pretend to be `event_loop.rs`).

use av_guard::{scan_source, Report};

fn scan_fixture(rule_dir: &str, fixture: &str, masquerade: &str) -> Report {
    let path = format!(
        "{}/tests/fixtures/{}/{}.rs",
        env!("CARGO_MANIFEST_DIR"),
        rule_dir,
        fixture
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"));
    scan_source(masquerade, &text)
}

/// The violating fixture must produce at least one finding, all of the
/// rule under test (a cross-rule finding would mean the fixture leaked
/// into another rule's scope).
fn assert_violating(rule: &str, rule_dir: &str, masquerade: &str) {
    let report = scan_fixture(rule_dir, "violating", masquerade);
    assert!(
        !report.findings.is_empty(),
        "{rule}: violating fixture produced no findings"
    );
    for f in &report.findings {
        assert_eq!(
            f.rule, rule,
            "{rule}: violating fixture leaked a {} finding: {}",
            f.rule, f.message
        );
    }
}

fn assert_clean(rule: &str, rule_dir: &str, masquerade: &str) {
    let report = scan_fixture(rule_dir, "clean", masquerade);
    assert!(
        report.findings.is_empty(),
        "{rule}: clean fixture flagged: {:?}",
        report.findings
    );
}

/// The allow-annotated fixture is the violating shape plus a justified
/// directive: zero findings (no G0 either — the allow must parse and be
/// used) and the allow counted as honored.
fn assert_allowed(rule: &str, rule_dir: &str, masquerade: &str) {
    let report = scan_fixture(rule_dir, "allowed", masquerade);
    assert!(
        report.findings.is_empty(),
        "{rule}: allow-annotated fixture still flagged: {:?}",
        report.findings
    );
    assert!(
        report.allows_honored >= 1,
        "{rule}: allow directive was not honored"
    );
}

#[test]
fn g1_lock_order_fixtures() {
    let at = "src/fixtures/g1.rs";
    assert_violating("G1", "g1", at);
    assert_clean("G1", "g1", at);
    assert_allowed("G1", "g1", at);
}

#[test]
fn g2_storage_bypass_fixtures() {
    let at = "crates/av-durable/src/fixture.rs";
    assert_violating("G2", "g2", at);
    assert_clean("G2", "g2", at);
    assert_allowed("G2", "g2", at);
}

#[test]
fn g3_panic_path_fixtures() {
    let at = "crates/av-service/src/server/pool.rs";
    assert_violating("G3", "g3", at);
    assert_clean("G3", "g3", at);
    assert_allowed("G3", "g3", at);
}

#[test]
fn g4_determinism_fixtures() {
    let at = "crates/av-index/src/persist.rs";
    assert_violating("G4", "g4", at);
    assert_clean("G4", "g4", at);
    assert_allowed("G4", "g4", at);
}

#[test]
fn g5_blocking_in_reactor_fixtures() {
    let at = "crates/av-service/src/server/event_loop.rs";
    assert_violating("G5", "g5", at);
    assert_clean("G5", "g5", at);
    assert_allowed("G5", "g5", at);
}

/// Fixtures scanned *outside* their rule's scope are silent: scoping, not
/// luck, is what keeps the rest of the workspace quiet.
#[test]
fn fixtures_out_of_scope_are_silent() {
    for dir in ["g2", "g3", "g4", "g5"] {
        let report = scan_fixture(dir, "violating", "crates/av-core/src/out_of_scope.rs");
        assert!(
            report.findings.is_empty(),
            "{dir}: violating fixture flagged outside its scope: {:?}",
            report.findings
        );
    }
}
