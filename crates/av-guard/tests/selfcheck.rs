//! The live workspace must pass its own linter: zero findings (which
//! includes zero G0s — so no malformed, unknown-rule, or unused allow
//! directives) and every allow that exists carries a justification.

use av_guard::scan_workspace;
use std::path::Path;

#[test]
fn workspace_is_guard_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("av-guard lives two levels under the workspace root");
    let report = scan_workspace(root).expect("workspace scan failed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the workspace no longer passes av-guard:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
