//! Dictionary rules with a distributional test — the fallback for columns
//! whose domain is a fixed vocabulary rather than a syntactic pattern.
//!
//! The paper's §6 notes that "for natural-language data drawn from a fixed
//! vocabulary (e.g., countries or airport-codes), dictionary-based
//! validation learned from examples is applicable". Unlike TFDV's brittle
//! exact-dictionary rule, this one reuses the §4 machinery: it tracks the
//! training-time out-of-vocabulary rate and raises an alarm only when the
//! rate shifts significantly under a two-sample homogeneity test.

use av_stats::HomogeneityTest;
use std::collections::BTreeSet;

use crate::api::{Explanation, Tally, ValidationSession, Validator, Verdict};
use crate::config::{FmdvConfig, InferError};
use crate::rule::{distributional_report, ValidationReport};

/// A learned vocabulary rule.
#[derive(Debug, Clone)]
pub struct DictionaryRule {
    /// The vocabulary observed at training time.
    pub dictionary: BTreeSet<String>,
    /// Training-time out-of-vocabulary rate (0.0 when trained on all data).
    pub train_oov: f64,
    /// Number of training values observed.
    pub train_size: usize,
    /// Homogeneity test applied at validation time.
    pub test: HomogeneityTest,
    /// Significance level for raising an alarm.
    pub alpha: f64,
}

impl DictionaryRule {
    /// Learn a dictionary from training values. Declines (`NoHypothesis`)
    /// unless the column is genuinely categorical: the vocabulary must be
    /// small relative to the data (`distinct/total ≤ max_distinct_ratio`),
    /// otherwise unseen-but-valid values would flood validation with false
    /// positives — the §1 TFDV failure mode.
    pub fn infer<S: AsRef<str>>(
        train: &[S],
        cfg: &FmdvConfig,
        max_distinct_ratio: f64,
    ) -> Result<DictionaryRule, InferError> {
        if train.is_empty() {
            return Err(InferError::EmptyColumn);
        }
        let dictionary: BTreeSet<String> = train.iter().map(|v| v.as_ref().to_string()).collect();
        let ratio = dictionary.len() as f64 / train.len() as f64;
        if ratio > max_distinct_ratio {
            return Err(InferError::NoHypothesis);
        }
        Ok(DictionaryRule {
            dictionary,
            train_oov: 0.0,
            train_size: train.len(),
            test: cfg.test,
            alpha: cfg.alpha,
        })
    }

    /// Is a single value in-vocabulary?
    pub fn conforms(&self, value: &str) -> bool {
        self.dictionary.contains(value)
    }

    /// The vocabulary entry sharing the longest prefix with `value` (its
    /// lexicographic neighbors are the only candidates, so this is two
    /// `BTreeSet` range probes, not a scan).
    pub fn nearest_entry(&self, value: &str) -> Option<&str> {
        use std::ops::Bound;
        let below = self
            .dictionary
            .range::<str, _>((Bound::Unbounded, Bound::Included(value)))
            .next_back()
            .map(String::as_str);
        let above = self
            .dictionary
            .range::<str, _>((Bound::Excluded(value), Bound::Unbounded))
            .next()
            .map(String::as_str);
        let common = |e: &str| {
            e.as_bytes()
                .iter()
                .zip(value.as_bytes())
                .take_while(|(a, b)| a == b)
                .count()
        };
        match (below, above) {
            (Some(b), Some(a)) => Some(if common(a) > common(b) { a } else { b }),
            (e, None) | (None, e) => e,
        }
    }

    /// Validate a future column: flag when the out-of-vocabulary rate
    /// increased significantly versus training time. Streams any borrowed
    /// iterator without copying values.
    pub fn validate<I>(&self, values: I) -> ValidationReport
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut session = ValidationSession::new(self);
        for v in values {
            session.push(v.as_ref());
        }
        session.finish()
    }
}

impl Validator for DictionaryRule {
    fn describe(&self) -> String {
        format!("dictionary of {} values", self.dictionary.len())
    }

    fn check(&self, value: &str) -> Verdict {
        Verdict::conforming(self.conforms(value))
    }

    fn explain(&self, value: &str) -> Option<Explanation> {
        if self.conforms(value) {
            return None;
        }
        let Some(nearest) = self.nearest_entry(value) else {
            return Some(Explanation::new("vocabulary is empty"));
        };
        // Where the value departs from its nearest entry, rounded down to a
        // char boundary of the value.
        let mut at = nearest
            .as_bytes()
            .iter()
            .zip(value.as_bytes())
            .take_while(|(a, b)| a == b)
            .count();
        while !value.is_char_boundary(at) {
            at -= 1;
        }
        let end = value[at..].chars().next().map_or(at, |c| at + c.len_utf8());
        Some(Explanation {
            reason: format!(
                "not in the {}-value vocabulary; nearest entry is {nearest:?}",
                self.dictionary.len()
            ),
            failed_at: Some(at),
            span: Some((at, end)),
            expected: Some(format!("a vocabulary entry such as {nearest:?}")),
            matched_prefix: Some(value[..at].to_string()),
        })
    }

    fn finish(&self, tally: Tally) -> ValidationReport {
        distributional_report(
            tally,
            self.train_oov,
            self.train_size,
            self.test,
            self.alpha,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn categorical_train() -> Vec<String> {
        (0..100)
            .map(|i| ["Delivered", "Pending", "Rejected"][i % 3].to_string())
            .collect()
    }

    #[test]
    fn categorical_column_gets_a_dictionary() {
        let rule =
            DictionaryRule::infer(&categorical_train(), &FmdvConfig::default(), 0.1).unwrap();
        assert_eq!(rule.dictionary.len(), 3);
        assert!(rule.conforms("Pending"));
        assert!(!rule.conforms("pending"));
    }

    #[test]
    fn high_cardinality_column_declines() {
        let unique: Vec<String> = (0..100).map(|i| format!("id-{i}")).collect();
        assert!(matches!(
            DictionaryRule::infer(&unique, &FmdvConfig::default(), 0.1),
            Err(InferError::NoHypothesis)
        ));
    }

    #[test]
    fn occasional_new_category_is_tolerated() {
        // A handful of new values is not a significant distribution shift.
        let rule =
            DictionaryRule::infer(&categorical_train(), &FmdvConfig::default(), 0.1).unwrap();
        let mut future = categorical_train();
        future[0] = "Archived".to_string();
        let report = rule.validate(&future);
        assert!(!report.flagged, "p = {}", report.p_value);
    }

    #[test]
    fn vocabulary_swap_is_flagged() {
        let rule =
            DictionaryRule::infer(&categorical_train(), &FmdvConfig::default(), 0.1).unwrap();
        let swapped: Vec<String> = (0..100)
            .map(|i| format!("2019-03-{:02}", i % 28 + 1))
            .collect();
        let report = rule.validate(&swapped);
        assert!(report.flagged);
        assert_eq!(report.nonconforming, 100);
    }

    #[test]
    fn explain_points_at_the_nearest_entry() {
        let rule =
            DictionaryRule::infer(&categorical_train(), &FmdvConfig::default(), 0.1).unwrap();
        assert!(Validator::explain(&rule, "Pending").is_none());
        let e = Validator::explain(&rule, "Pending2").unwrap();
        assert!(e.reason.contains("\"Pending\""), "{}", e.reason);
        assert_eq!(e.failed_at, Some(7));
        assert_eq!(e.matched_prefix.as_deref(), Some("Pending"));
        let e = Validator::explain(&rule, "NULL").unwrap();
        assert_eq!(e.failed_at, Some(0));
    }

    #[test]
    fn empty_inputs() {
        assert!(matches!(
            DictionaryRule::infer(&Vec::<String>::new(), &FmdvConfig::default(), 0.1),
            Err(InferError::EmptyColumn)
        ));
        let rule =
            DictionaryRule::infer(&categorical_train(), &FmdvConfig::default(), 0.1).unwrap();
        assert!(!rule.validate(Vec::<String>::new()).flagged);
    }
}
