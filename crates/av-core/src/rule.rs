//! Validation rules and the test-time distributional check (§4).

use crate::api::{CheckScratch, Explanation, Tally, ValidationSession, Validator, Verdict};
use av_pattern::{CompiledPattern, Pattern};
use av_stats::{HomogeneityTest, Table2x2};

/// The §4 two-sample conclusion shared by every distributional rule kind
/// (pattern, dictionary, numeric): compare the streamed non-conforming
/// tally against the training-time rate and flag only a significant
/// *increase*. Pure in `tally` + the frozen training stats, so streaming
/// and batch validation conclude bit-identically.
pub(crate) fn distributional_report(
    tally: Tally,
    train_frac: f64,
    train_size: usize,
    test: HomogeneityTest,
    alpha: f64,
) -> ValidationReport {
    let Tally {
        checked,
        nonconforming,
    } = tally;
    let frac = tally.fraction();
    // Conforming counts as "success" in the 2×2 table.
    let train_conform = ((1.0 - train_frac) * train_size as f64).round() as u64;
    let table = Table2x2::from_counts(
        train_conform.min(train_size as u64),
        train_size as u64,
        (checked - nonconforming) as u64,
        checked as u64,
    );
    let p_value = test.p_value(&table);
    let flagged = checked > 0 && frac > train_frac && p_value < alpha;
    ValidationReport {
        checked,
        nonconforming,
        nonconforming_frac: frac,
        p_value,
        flagged,
    }
}

/// An inferred data-validation rule: a pattern plus the training-time
/// non-conforming rate and the statistical test configuration.
///
/// Construct with [`ValidationRule::new`], which lowers the pattern into a
/// [`CompiledPattern`] once — every later [`ValidationRule::conforms`] /
/// [`Validator::check`] call runs the compiled byte-level program with no
/// per-call allocation.
#[derive(Debug, Clone)]
pub struct ValidationRule {
    /// The data-domain pattern `h` chosen by FMDV. Private so it can never
    /// drift from the compiled program — read via
    /// [`ValidationRule::pattern`]; a different pattern means a new rule.
    pattern: Pattern,
    /// Fraction of training values not matching `h` — `θ_C(h)` in §4
    /// (0.0 for the non-horizontal variants).
    pub train_nonconforming: f64,
    /// Number of training values observed.
    pub train_size: usize,
    /// `FPR_T(h)` estimated from the corpus index at inference time.
    pub expected_fpr: f64,
    /// `Cov_T(h)` from the index.
    pub coverage: u64,
    /// Homogeneity test applied at validation time.
    pub test: HomogeneityTest,
    /// Significance level for raising an alarm.
    pub alpha: f64,
    /// The pattern lowered to a byte-matching program, cached at
    /// construction.
    compiled: CompiledPattern,
}

/// Outcome of validating a future column `C'` against a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Values checked.
    pub checked: usize,
    /// Values not matching the rule's pattern.
    pub nonconforming: usize,
    /// `θ_C'(h)`: the non-conforming fraction at test time.
    pub nonconforming_frac: f64,
    /// p-value of the two-sample homogeneity test against training time.
    pub p_value: f64,
    /// True when the column should be flagged as a data-quality issue.
    pub flagged: bool,
}

impl ValidationRule {
    /// Build a rule, compiling the pattern once for all later checks.
    /// Fields are in struct order: θ_C(h), |C|, `FPR_T(h)`, `Cov_T(h)`,
    /// the homogeneity test, and its significance level.
    pub fn new(
        pattern: Pattern,
        train_nonconforming: f64,
        train_size: usize,
        expected_fpr: f64,
        coverage: u64,
        test: HomogeneityTest,
        alpha: f64,
    ) -> ValidationRule {
        let compiled = pattern.compile();
        ValidationRule {
            pattern,
            train_nonconforming,
            train_size,
            expected_fpr,
            coverage,
            test,
            alpha,
            compiled,
        }
    }

    /// Does a single value conform to the rule's pattern?
    pub fn conforms(&self, value: &str) -> bool {
        self.compiled.matches(value)
    }

    /// The data-domain pattern `h` this rule validates with.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The compiled matching program backing this rule.
    pub fn compiled(&self) -> &CompiledPattern {
        &self.compiled
    }

    /// Validate a future column `C'` (§4): compute the non-conforming
    /// fraction, run the two-sample homogeneity test against the training
    /// fraction, and flag only when the fraction *increased* significantly
    /// (a significant decrease is not a data-quality issue).
    ///
    /// Takes any iterator of borrowed (or `AsRef<str>`) values — a
    /// `&Vec<String>`, a `&[&str]`, or a stream being decoded on the fly —
    /// and never materializes them: this is a [`ValidationSession`] driven
    /// by a loop.
    pub fn validate<I>(&self, values: I) -> ValidationReport
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut session = ValidationSession::new(self);
        for v in values {
            session.push(v.as_ref());
        }
        session.finish()
    }

    /// Export the rule as a standard regex (usable outside this crate).
    pub fn to_regex(&self) -> String {
        self.pattern.to_regex()
    }
}

impl Validator for ValidationRule {
    fn describe(&self) -> String {
        self.to_string()
    }

    fn check(&self, value: &str) -> Verdict {
        Verdict::conforming(self.conforms(value))
    }

    fn check_with(&self, value: &str, scratch: &mut CheckScratch) -> Verdict {
        Verdict::conforming(self.compiled.matches_with(value, scratch.pattern_scratch()))
    }

    fn explain(&self, value: &str) -> Option<Explanation> {
        let trace = self.compiled.explain(value)?;
        let reason = if trace.failed_at == value.len() && trace.inst < trace.num_insts {
            format!(
                "value ended at byte {} while {} was still required",
                trace.failed_at, trace.expected
            )
        } else {
            format!(
                "mismatch at byte {}: expected {}, found {:?}",
                trace.failed_at,
                trace.expected,
                trace.failing_span(value)
            )
        };
        let matched_prefix = trace.matched_prefix(value).to_string();
        Some(Explanation {
            reason,
            failed_at: Some(trace.failed_at),
            span: Some((trace.failed_at, trace.span_end)),
            expected: Some(trace.expected),
            matched_prefix: Some(matched_prefix),
        })
    }

    fn finish(&self, tally: Tally) -> ValidationReport {
        distributional_report(
            tally,
            self.train_nonconforming,
            self.train_size,
            self.test,
            self.alpha,
        )
    }
}

impl std::fmt::Display for ValidationRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (expected FPR {:.4}%, coverage {}, θ_train {:.3})",
            self.pattern,
            self.expected_fpr * 100.0,
            self.coverage,
            self.train_nonconforming
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::parse;

    fn rule(pattern: &str, theta: f64, train_size: usize) -> ValidationRule {
        ValidationRule::new(
            parse(pattern).unwrap(),
            theta,
            train_size,
            0.001,
            500,
            HomogeneityTest::FisherExact,
            0.01,
        )
    }

    #[test]
    fn clean_same_domain_column_passes() {
        let r = rule("<letter>{3} <digit>{2} <digit>{4}", 0.0, 1000);
        let future: Vec<String> = (1..=28).map(|d| format!("Apr {d:02} 2019")).collect();
        let report = r.validate(&future);
        assert_eq!(report.nonconforming, 0);
        assert!(!report.flagged);
    }

    #[test]
    fn schema_drift_column_is_flagged() {
        let r = rule("<letter>{3} <digit>{2} <digit>{4}", 0.0, 1000);
        let drifted: Vec<String> = (0..100).map(|i| format!("{i}.99")).collect();
        let report = r.validate(&drifted);
        assert_eq!(report.nonconforming, 100);
        assert!((report.nonconforming_frac - 1.0).abs() < 1e-12);
        assert!(report.flagged);
        assert!(report.p_value < 1e-10);
    }

    #[test]
    fn small_nonconforming_shift_is_not_flagged() {
        // §4's example: θ_C = 0.1%, θ_C' = 0.11% — raising alarms would be
        // a false positive.
        let r = rule("<digit>+", 0.001, 10_000);
        let mut future: Vec<String> = (0..9989).map(|i| i.to_string()).collect();
        for _ in 0..11 {
            future.push("-".to_string());
        }
        let report = r.validate(&future);
        assert!((report.nonconforming_frac - 0.0011).abs() < 1e-6);
        assert!(!report.flagged, "p = {}", report.p_value);
    }

    #[test]
    fn large_nonconforming_shift_is_flagged() {
        // §4: θ_C = 0.1% vs θ_C' = 5% — an issue we should report.
        let r = rule("<digit>+", 0.001, 10_000);
        let mut future: Vec<String> = (0..950).map(|i| i.to_string()).collect();
        for _ in 0..50 {
            future.push("N/A".to_string());
        }
        let report = r.validate(&future);
        assert!(report.flagged, "p = {}", report.p_value);
    }

    #[test]
    fn decrease_in_nonconforming_never_flags() {
        let r = rule("<digit>+", 0.10, 1000);
        let future: Vec<String> = (0..1000).map(|i| i.to_string()).collect();
        let report = r.validate(&future);
        assert_eq!(report.nonconforming, 0);
        assert!(!report.flagged, "cleaner data is not an issue");
    }

    #[test]
    fn empty_future_column_is_not_flagged() {
        let r = rule("<digit>+", 0.0, 100);
        let report = r.validate(Vec::<String>::new());
        assert!(!report.flagged);
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn explain_pinpoints_the_failing_span() {
        let r = rule("<letter>{3} <digit>{2} <digit>{4}", 0.0, 1000);
        assert!(Validator::explain(&r, "Mar 01 2019").is_none());
        let e = Validator::explain(&r, "March 01 2019").unwrap();
        assert_eq!(e.failed_at, Some(3));
        assert_eq!(e.span, Some((3, 4)));
        assert_eq!(e.matched_prefix.as_deref(), Some("Mar"));
        assert!(e.reason.contains("byte 3"), "{}", e.reason);
        // Truncated value: empty span at the end.
        let e = Validator::explain(&r, "Mar 01 20").unwrap();
        assert_eq!(e.span, Some((9, 9)));
        assert!(e.reason.contains("ended"), "{}", e.reason);
    }

    #[test]
    fn regex_export_is_usable() {
        let r = rule("<digit>{2}/<digit>{4}", 0.0, 10);
        let re = av_regex::Regex::new(&r.to_regex()).unwrap();
        assert!(re.is_full_match("03/2019"));
        assert!(!re.is_full_match("3/2019"));
    }
}
