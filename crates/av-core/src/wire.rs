//! Wire serialization for inferred rules, so a long-running service can
//! persist its rule catalog and reload it after a restart.
//!
//! The format is a single line of `key=value` pairs separated by `;`, with
//! percent-encoding for free-text fields. Floats are printed with Rust's
//! shortest-roundtrip formatting, so every numeric field reloads to the
//! exact same bits. Patterns serialize via their display form, whose
//! display → parse round-trip is property-tested in `av-pattern`.

use std::collections::BTreeSet;

use av_stats::HomogeneityTest;

use crate::dictionary::DictionaryRule;
use crate::numeric::NumericRule;
use crate::rule::ValidationRule;
use crate::AnyRule;

/// Why a wire line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule wire format error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// Percent-encode everything outside the printable-ASCII safe set, plus
/// the wire delimiters themselves (`%`, `=`, `;`, `,`). Shared with the
/// service-layer catalog so both sides of a line escape identically.
pub fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if (0x21..=0x7E).contains(&b) && !matches!(b, b'%' | b'=' | b';' | b',') {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Inverse of [`pct_encode`].
pub fn pct_decode(s: &str) -> Result<String, WireError> {
    let mut bytes = Vec::with_capacity(s.len());
    let raw = s.as_bytes();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == b'%' {
            let hex = raw
                .get(i + 1..i + 3)
                .ok_or_else(|| err("truncated percent escape"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| err("bad percent escape"))?;
            bytes.push(u8::from_str_radix(hex, 16).map_err(|_| err("bad percent escape"))?);
            i += 3;
        } else {
            bytes.push(raw[i]);
            i += 1;
        }
    }
    String::from_utf8(bytes).map_err(|_| err("invalid utf-8 after decoding"))
}

fn fields(line: &str) -> Vec<(&str, &str)> {
    line.split(';')
        .filter(|p| !p.is_empty())
        .filter_map(|p| p.split_once('='))
        .collect()
}

fn lookup<'a>(fs: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, WireError> {
    fs.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| err(format!("missing field {key:?}")))
}

fn parse_f64(fs: &[(&str, &str)], key: &str) -> Result<f64, WireError> {
    lookup(fs, key)?
        .parse()
        .map_err(|_| err(format!("field {key:?} is not a float")))
}

fn parse_usize(fs: &[(&str, &str)], key: &str) -> Result<usize, WireError> {
    lookup(fs, key)?
        .parse()
        .map_err(|_| err(format!("field {key:?} is not an integer")))
}

fn parse_u64(fs: &[(&str, &str)], key: &str) -> Result<u64, WireError> {
    lookup(fs, key)?
        .parse()
        .map_err(|_| err(format!("field {key:?} is not an integer")))
}

fn test_name(t: HomogeneityTest) -> &'static str {
    match t {
        HomogeneityTest::FisherExact => "fisher",
        HomogeneityTest::ChiSquaredYates => "chi2yates",
    }
}

fn parse_test(s: &str) -> Result<HomogeneityTest, WireError> {
    match s {
        "fisher" => Ok(HomogeneityTest::FisherExact),
        "chi2yates" => Ok(HomogeneityTest::ChiSquaredYates),
        other => Err(err(format!("unknown homogeneity test {other:?}"))),
    }
}

impl ValidationRule {
    /// Serialize to one wire line.
    pub fn to_wire(&self) -> String {
        format!(
            "kind=pattern;pattern={};theta={};n={};fpr={};cov={};test={};alpha={}",
            pct_encode(&self.pattern().to_string()),
            self.train_nonconforming,
            self.train_size,
            self.expected_fpr,
            self.coverage,
            test_name(self.test),
            self.alpha,
        )
    }

    /// Decode a line produced by [`ValidationRule::to_wire`].
    pub fn from_wire(line: &str) -> Result<ValidationRule, WireError> {
        let fs = fields(line);
        if lookup(&fs, "kind")? != "pattern" {
            return Err(err("not a pattern rule"));
        }
        let printed = pct_decode(lookup(&fs, "pattern")?)?;
        let pattern = av_pattern::parse(&printed)
            .map_err(|e| err(format!("unparseable pattern {printed:?}: {e}")))?;
        Ok(ValidationRule::new(
            pattern,
            parse_f64(&fs, "theta")?,
            parse_usize(&fs, "n")?,
            parse_f64(&fs, "fpr")?,
            parse_u64(&fs, "cov")?,
            parse_test(lookup(&fs, "test")?)?,
            parse_f64(&fs, "alpha")?,
        ))
    }
}

impl NumericRule {
    /// Serialize to one wire line.
    pub fn to_wire(&self) -> String {
        format!(
            "kind=numeric;lo={};hi={};theta={};n={};test={};alpha={}",
            self.lo,
            self.hi,
            self.train_oor,
            self.train_size,
            test_name(self.test),
            self.alpha,
        )
    }

    /// Decode a line produced by [`NumericRule::to_wire`].
    pub fn from_wire(line: &str) -> Result<NumericRule, WireError> {
        let fs = fields(line);
        if lookup(&fs, "kind")? != "numeric" {
            return Err(err("not a numeric rule"));
        }
        Ok(NumericRule {
            lo: parse_f64(&fs, "lo")?,
            hi: parse_f64(&fs, "hi")?,
            train_oor: parse_f64(&fs, "theta")?,
            train_size: parse_usize(&fs, "n")?,
            test: parse_test(lookup(&fs, "test")?)?,
            alpha: parse_f64(&fs, "alpha")?,
        })
    }
}

impl DictionaryRule {
    /// Serialize to one wire line. `nvocab` carries the exact entry
    /// count so a vocabulary containing the empty string survives the
    /// round-trip (an empty join is otherwise ambiguous with one empty
    /// entry).
    pub fn to_wire(&self) -> String {
        let vocab: Vec<String> = self.dictionary.iter().map(|v| pct_encode(v)).collect();
        format!(
            "kind=dict;nvocab={};vocab={};theta={};n={};test={};alpha={}",
            vocab.len(),
            vocab.join(","),
            self.train_oov,
            self.train_size,
            test_name(self.test),
            self.alpha,
        )
    }

    /// Decode a line produced by [`DictionaryRule::to_wire`].
    pub fn from_wire(line: &str) -> Result<DictionaryRule, WireError> {
        let fs = fields(line);
        if lookup(&fs, "kind")? != "dict" {
            return Err(err("not a dictionary rule"));
        }
        let raw = lookup(&fs, "vocab")?;
        let nvocab = parse_usize(&fs, "nvocab")?;
        let dictionary: BTreeSet<String> = if nvocab == 0 {
            BTreeSet::new()
        } else {
            let entries: Vec<&str> = raw.split(',').collect();
            if entries.len() != nvocab {
                return Err(err(format!(
                    "vocab has {} entries, nvocab says {nvocab}",
                    entries.len()
                )));
            }
            entries
                .into_iter()
                .map(pct_decode)
                .collect::<Result<_, _>>()?
        };
        Ok(DictionaryRule {
            dictionary,
            train_oov: parse_f64(&fs, "theta")?,
            train_size: parse_usize(&fs, "n")?,
            test: parse_test(lookup(&fs, "test")?)?,
            alpha: parse_f64(&fs, "alpha")?,
        })
    }
}

impl AnyRule {
    /// Serialize to one wire line (dispatches on the rule kind).
    pub fn to_wire(&self) -> String {
        match self {
            AnyRule::Pattern(r) => r.to_wire(),
            AnyRule::Numeric(r) => r.to_wire(),
            AnyRule::Dictionary(r) => r.to_wire(),
        }
    }

    /// Decode any rule kind from a wire line.
    pub fn from_wire(line: &str) -> Result<AnyRule, WireError> {
        let fs = fields(line);
        match lookup(&fs, "kind")? {
            "pattern" => ValidationRule::from_wire(line).map(AnyRule::Pattern),
            "numeric" => NumericRule::from_wire(line).map(AnyRule::Numeric),
            "dict" => DictionaryRule::from_wire(line).map(AnyRule::Dictionary),
            other => Err(err(format!("unknown rule kind {other:?}"))),
        }
    }
}

/// Rules flow between service threads; keep them `Send + Sync` forever.
#[allow(dead_code)]
fn assert_rules_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ValidationRule>();
    assert_send_sync::<NumericRule>();
    assert_send_sync::<DictionaryRule>();
    assert_send_sync::<AnyRule>();
    assert_send_sync::<crate::ValidationReport>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FmdvConfig;
    use av_pattern::parse;

    fn pattern_rule() -> ValidationRule {
        ValidationRule::new(
            parse("<digit>{2}:<digit>{2}:<digit>{2}").unwrap(),
            1.0 / 3.0,
            300,
            0.0123456789,
            542,
            HomogeneityTest::FisherExact,
            0.01,
        )
    }

    #[test]
    fn pattern_rule_roundtrips_exactly() {
        let r = pattern_rule();
        let back = ValidationRule::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back.pattern().to_string(), r.pattern().to_string());
        assert_eq!(
            back.train_nonconforming.to_bits(),
            r.train_nonconforming.to_bits()
        );
        assert_eq!(back.train_size, r.train_size);
        assert_eq!(back.expected_fpr.to_bits(), r.expected_fpr.to_bits());
        assert_eq!(back.coverage, r.coverage);
        assert_eq!(back.test, r.test);
        assert_eq!(back.alpha.to_bits(), r.alpha.to_bits());
    }

    #[test]
    fn pattern_with_literal_delimiters_roundtrips() {
        let r = ValidationRule::new(
            parse("<digit>+;=,%<letter>+").unwrap(),
            0.0,
            10,
            0.001,
            5,
            HomogeneityTest::FisherExact,
            0.01,
        );
        let back = ValidationRule::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back.pattern().to_string(), r.pattern().to_string());
        assert!(back.conforms("12;=,%ab"));
    }

    #[test]
    fn dictionary_rule_roundtrips() {
        let train: Vec<String> = ["Delivered", "Pending", "weird;=,%value", "ünïcode"]
            .iter()
            .flat_map(|v| std::iter::repeat_n(v.to_string(), 25))
            .collect();
        let r = DictionaryRule::infer(&train, &FmdvConfig::default(), 0.2).unwrap();
        let back = DictionaryRule::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back.dictionary, r.dictionary);
        assert!(back.conforms("weird;=,%value"));
        assert!(back.conforms("ünïcode"));
        assert!(!back.conforms("nope"));
    }

    #[test]
    fn dictionary_with_empty_string_entry_roundtrips() {
        let train: Vec<String> = ["", "yes", "no"]
            .iter()
            .flat_map(|v| std::iter::repeat_n(v.to_string(), 30))
            .collect();
        let r = DictionaryRule::infer(&train, &FmdvConfig::default(), 0.2).unwrap();
        assert!(r.conforms(""));
        let back = DictionaryRule::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back.dictionary, r.dictionary);
        assert!(back.conforms(""), "empty-string vocab entry must survive");
        // An inconsistent count is rejected rather than silently truncated.
        assert!(DictionaryRule::from_wire(
            "kind=dict;nvocab=3;vocab=a,b;theta=0;n=9;test=fisher;alpha=0.01"
        )
        .is_err());
    }

    #[test]
    fn numeric_rule_roundtrips_exactly() {
        let train: Vec<String> = (0..100).map(|i| (i as f64 / 7.0).to_string()).collect();
        let r = NumericRule::infer_default(&train, &FmdvConfig::default()).unwrap();
        let back = NumericRule::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back.lo.to_bits(), r.lo.to_bits());
        assert_eq!(back.hi.to_bits(), r.hi.to_bits());
        assert_eq!(back.train_oor.to_bits(), r.train_oor.to_bits());
    }

    #[test]
    fn any_rule_dispatches_on_kind() {
        let r = AnyRule::Pattern(pattern_rule());
        assert!(matches!(
            AnyRule::from_wire(&r.to_wire()).unwrap(),
            AnyRule::Pattern(_)
        ));
        assert!(AnyRule::from_wire("kind=banana").is_err());
        assert!(AnyRule::from_wire("garbage").is_err());
    }
}
