//! Greedy progressive multi-sequence alignment over coarse token sequences
//! (§3).
//!
//! The paper aligns the coarse token sequences of a column's values before
//! vertical cutting; since MSA is NP-hard under sum-of-pair scores, it
//! aligns one additional sequence at a time greedily, noting that for
//! homogeneous machine-generated data this is usually optimal.
//!
//! In this implementation, values are first grouped by their merged coarse
//! key (identical keys align trivially — by far the common case). This
//! module provides the alignment machinery used to *diagnose* near-misses:
//! e.g. deciding whether two coarse structures differ by a small number of
//! gaps (a candidate for tolerant alignment) or are fundamentally different
//! domains (a case for horizontal cuts).

use av_pattern::{Pattern, Token};

/// One cell of an aligned sequence: a token or a gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aligned {
    /// A token from the input sequence.
    Tok(Token),
    /// A gap inserted by the aligner.
    Gap,
}

/// Pairwise global alignment (Needleman–Wunsch) of two token sequences.
/// Match scores +2, mismatch −1, gap −1. Returns the aligned pair.
pub fn align_pair(a: &[Token], b: &[Token]) -> (Vec<Aligned>, Vec<Aligned>) {
    let (n, m) = (a.len(), b.len());
    const MATCH: i64 = 2;
    const MISMATCH: i64 = -1;
    const GAP: i64 = -1;
    let mut score = vec![vec![0i64; m + 1]; n + 1];
    for (i, row) in score.iter_mut().enumerate() {
        row[0] = GAP * i as i64;
    }
    for (j, cell) in score[0].iter_mut().enumerate() {
        *cell = GAP * j as i64;
    }
    for i in 1..=n {
        for j in 1..=m {
            let diag = score[i - 1][j - 1]
                + if a[i - 1] == b[j - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
            let up = score[i - 1][j] + GAP;
            let left = score[i][j - 1] + GAP;
            score[i][j] = diag.max(up).max(left);
        }
    }
    // Traceback.
    let (mut i, mut j) = (n, m);
    let mut ra: Vec<Aligned> = Vec::with_capacity(n + m);
    let mut rb: Vec<Aligned> = Vec::with_capacity(n + m);
    while i > 0 || j > 0 {
        if i > 0
            && j > 0
            && score[i][j]
                == score[i - 1][j - 1]
                    + if a[i - 1] == b[j - 1] {
                        MATCH
                    } else {
                        MISMATCH
                    }
        {
            ra.push(Aligned::Tok(a[i - 1].clone()));
            rb.push(Aligned::Tok(b[j - 1].clone()));
            i -= 1;
            j -= 1;
        } else if i > 0 && score[i][j] == score[i - 1][j] + GAP {
            ra.push(Aligned::Tok(a[i - 1].clone()));
            rb.push(Aligned::Gap);
            i -= 1;
        } else {
            ra.push(Aligned::Gap);
            rb.push(Aligned::Tok(b[j - 1].clone()));
            j -= 1;
        }
    }
    ra.reverse();
    rb.reverse();
    (ra, rb)
}

/// Number of gaps needed to align two coarse patterns, or `None` when the
/// aligned (non-gap) positions disagree — i.e. the structures are
/// fundamentally different, not just off by insertions.
pub fn alignment_gap_distance(a: &Pattern, b: &Pattern) -> Option<usize> {
    let (ra, rb) = align_pair(a.tokens(), b.tokens());
    let mut gaps = 0usize;
    for (x, y) in ra.iter().zip(rb.iter()) {
        match (x, y) {
            (Aligned::Gap, _) | (_, Aligned::Gap) => gaps += 1,
            (Aligned::Tok(t), Aligned::Tok(u)) => {
                if t != u {
                    return None;
                }
            }
        }
    }
    Some(gaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::merged_key;

    #[test]
    fn identical_sequences_align_without_gaps() {
        let k = merged_key("9/07/2019 12:01:32 PM");
        let d = alignment_gap_distance(&k, &k);
        assert_eq!(d, Some(0));
    }

    #[test]
    fn missing_trailing_field_costs_gaps() {
        // "1:02:03" vs "1:02" — the second lacks one ":<num>" suffix.
        let a = merged_key("1:02:03");
        let b = merged_key("1:02");
        let d = alignment_gap_distance(&a, &b).expect("alignable");
        assert_eq!(d, 2, "one symbol + one alnum segment inserted");
    }

    #[test]
    fn different_structures_are_unalignable() {
        // Sym-vs-space class disagreement cannot be fixed by insertions
        // alone at equal length… construct directly:
        let a = merged_key("ab-cd");
        let b = merged_key("ab cd");
        // [alnum sym alnum] vs [alnum space alnum]: aligning token-by-token
        // hits a mismatch; with gaps it costs 2. The distance is defined
        // only when all aligned pairs agree, so expect either None or 2
        // gaps — assert the aligner prefers the mismatch-free gap solution.
        match alignment_gap_distance(&a, &b) {
            None => {}
            Some(g) => assert_eq!(g, 2),
        }
    }

    #[test]
    fn empty_sequence_aligns_with_all_gaps() {
        let a = merged_key("abc");
        let b = merged_key("");
        assert_eq!(alignment_gap_distance(&a, &b), Some(1));
    }

    #[test]
    fn pairwise_alignment_lengths_match() {
        let a = merged_key("0.1|02/18/2015 00:00:00|OnBooking");
        let b = merged_key("0.2|03/19/2016 01:02:03|Delivered");
        let (ra, rb) = align_pair(a.tokens(), b.tokens());
        assert_eq!(ra.len(), rb.len());
        assert!(ra.iter().all(|x| *x != Aligned::Gap));
        assert!(rb.iter().all(|x| *x != Aligned::Gap));
    }
}
