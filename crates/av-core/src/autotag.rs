//! Auto-Tag: the dual of FMDV (§2.3, shipped as the Auto-Tag feature in
//! Azure Purview).
//!
//! Where FMDV looks for a *safe* (minimum-FPR) validation pattern, the dual
//! problem looks for the *most restrictive* (smallest-coverage) pattern that
//! still describes the underlying domain, under a target false-negative
//! budget — such a pattern can then "tag" related columns of the same type
//! across the lake.

use crate::config::{FmdvConfig, InferError};
use av_index::PatternIndex;
use av_pattern::{analyze_column, CompiledPattern, Pattern};

/// An inferred tagging pattern.
#[derive(Debug, Clone)]
pub struct TagRule {
    /// The most restrictive pattern meeting the FNR budget. Private so it
    /// can never drift from the compiled program — read via
    /// [`TagRule::pattern`].
    pattern: Pattern,
    /// Number of corpus columns the pattern covers (the "tag reach").
    pub coverage: u64,
    /// Fraction of training values *not* matched (observed FNR proxy).
    pub train_fnr: f64,
    /// The pattern lowered to a byte-matching program.
    compiled: CompiledPattern,
}

impl TagRule {
    /// Build a tag rule, compiling the pattern once for all later checks.
    pub fn new(pattern: Pattern, coverage: u64, train_fnr: f64) -> TagRule {
        let compiled = pattern.compile();
        TagRule {
            pattern,
            coverage,
            train_fnr,
            compiled,
        }
    }

    /// The tagging pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Does a single value match the tag pattern?
    pub fn tags_value(&self, value: &str) -> bool {
        self.compiled.matches(value)
    }

    /// Would this tag apply to a column (majority of values match)?
    pub fn tags<S: AsRef<str>>(&self, values: &[S]) -> bool {
        if values.is_empty() {
            return false;
        }
        let hits = values
            .iter()
            .filter(|v| self.compiled.matches(v.as_ref()))
            .count();
        hits * 2 > values.len()
    }
}

/// A collection of named tag rules evaluated against values in **one
/// scan** via the catalog-wide matcher (`av-match`), instead of running
/// every tag's compiled program per value.
///
/// The classic Auto-Tag deployment shape: a lake-wide library of tag
/// patterns probed against each new column. With N tags the per-value
/// cost of the loop is O(N); the shared lazy DFA makes it ~one scan.
///
/// ```
/// use av_core::{TagRule, TagSet};
/// use av_pattern::parse;
///
/// let mut tags = TagSet::new();
/// tags.insert("time", &TagRule::new(
///     parse("<digit>{2}:<digit>{2}:<digit>{2}").unwrap(), 10, 0.0));
/// tags.insert("id", &TagRule::new(parse("<upper>{2}-<digit>+").unwrap(), 4, 0.0));
///
/// assert_eq!(tags.tags_value("12:30:59"), vec!["time"]);
/// assert_eq!(tags.tag_column(&["AB-1", "CD-22", "xx"]), vec!["id"]);
/// ```
#[derive(Debug, Default)]
pub struct TagSet {
    matcher: av_match::CatalogMatcher,
    names: Vec<String>,
    ids: std::collections::HashMap<String, u32>,
    scratch: Vec<u32>,
}

impl TagSet {
    /// Empty tag set.
    pub fn new() -> TagSet {
        TagSet::default()
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Add (or replace) a tag rule under `name`.
    pub fn insert(&mut self, name: &str, rule: &TagRule) {
        let id = match self.ids.get(name) {
            Some(&id) => id,
            None => {
                let id = self.names.len() as u32;
                self.names.push(name.to_string());
                self.ids.insert(name.to_string(), id);
                id
            }
        };
        self.matcher.insert(id, &rule.compiled);
    }

    /// Every tag whose pattern matches `value`, in insertion order.
    pub fn tags_value(&mut self, value: &str) -> Vec<&str> {
        let TagSet {
            matcher,
            names,
            scratch,
            ..
        } = self;
        matcher.classify_into(value, scratch);
        scratch
            .iter()
            .map(|&id| names[id as usize].as_str())
            .collect()
    }

    /// Every tag applying to a column — a majority of values match (the
    /// same vote as [`TagRule::tags`]), computed for all tags in one pass
    /// over the column.
    pub fn tag_column<S: AsRef<str>>(&mut self, values: &[S]) -> Vec<&str> {
        if values.is_empty() {
            return Vec::new();
        }
        let mut hits = vec![0usize; self.names.len()];
        let TagSet {
            matcher, scratch, ..
        } = self;
        for v in values {
            matcher.classify_into(v.as_ref(), scratch);
            for &id in scratch.iter() {
                hits[id as usize] += 1;
            }
        }
        self.names
            .iter()
            .enumerate()
            .filter(|(id, _)| hits[*id] * 2 > values.len())
            .map(|(_, name)| name.as_str())
            .collect()
    }
}

/// Infer a tagging pattern: minimize `Cov_T(h)` subject to the pattern
/// matching at least `(1 - fnr_budget)` of the training values and having
/// non-trivial corpus support. Accepts any iterator of string-likes; values
/// are borrowed throughout.
pub fn infer_tag<I>(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    train: I,
    fnr_budget: f64,
) -> Result<TagRule, InferError>
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let held: Vec<I::Item> = train.into_iter().collect();
    let train: Vec<&str> = held.iter().map(|v| v.as_ref()).collect();
    infer_tag_borrowed(index, cfg, &train, fnr_budget)
}

/// Monomorphic core of [`infer_tag`].
pub(crate) fn infer_tag_borrowed(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    train: &[&str],
    fnr_budget: f64,
) -> Result<TagRule, InferError> {
    if train.is_empty() {
        return Err(InferError::EmptyColumn);
    }
    let analysis = analyze_column(train, &cfg.pattern);
    let group = analysis.dominant().ok_or(InferError::NoHypothesis)?;
    let group_frac = group.count as f64 / analysis.total_values as f64;
    if group_frac + 1e-12 < 1.0 - fnr_budget {
        return Err(InferError::NoHypothesis);
    }
    let need = ((1.0 - fnr_budget) * analysis.total_values as f64 / group.count as f64
        * group.sample_size as f64)
        .ceil() as usize;
    // Streaming min-coverage selection: rank every emission by its
    // fingerprint-looked-up coverage, materialize a pattern only when it
    // wins (or ties on coverage and needs the deterministic pattern
    // tie-break) — same first-minimal semantics as the old `min_by` over
    // a collected candidate vector.
    let mut scratch = av_pattern::EnumScratch::default();
    let mut best: Option<crate::fmdv::Candidate> = None;
    group.for_each_pattern(
        0,
        group.positions.len(),
        need.clamp(1, group.sample_size),
        &cfg.pattern,
        &mut scratch,
        |sp| {
            let (fpr, cov) = match index.lookup_fingerprint(sp.fingerprint) {
                Some(stats) => (stats.fpr, stats.cov),
                None => (1.0, 0),
            };
            if cov < 1 {
                return;
            }
            let pattern = match &best {
                None => sp.to_pattern(),
                Some(b) if cov < b.cov => sp.to_pattern(),
                Some(b) if cov == b.cov => {
                    let p = sp.to_pattern();
                    if p < b.pattern {
                        p
                    } else {
                        return;
                    }
                }
                Some(_) => return,
            };
            best = Some(crate::fmdv::Candidate { pattern, fpr, cov });
        },
    );
    let best = best.ok_or(InferError::NoFeasible)?;
    let rule = TagRule::new(best.pattern, best.cov, 0.0);
    let miss = train.iter().filter(|v| !rule.tags_value(v)).count();
    Ok(TagRule {
        train_fnr: miss as f64 / train.len() as f64,
        ..rule
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, Column, LakeProfile};
    use av_index::{IndexConfig, PatternIndex};

    fn test_index() -> PatternIndex {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(800), 77);
        let cols: Vec<&Column> = corpus.columns().collect();
        PatternIndex::build(&cols, &IndexConfig::default())
    }

    #[test]
    fn tag_is_more_restrictive_than_validation_rule() {
        let index = test_index();
        let cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        let train: Vec<String> = (0..50)
            .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
            .collect();
        let tag = infer_tag(&index, &cfg, &train, 0.0).expect("tag inference");
        let train_refs: Vec<&str> = train.iter().map(String::as_str).collect();
        let rule = crate::fmdv::infer_fmdv(&index, &cfg, &train_refs, false).expect("fmdv");
        assert!(
            tag.coverage <= rule.cov,
            "tag cov {} should be ≤ validation cov {}",
            tag.coverage,
            rule.cov
        );
        assert_eq!(tag.train_fnr, 0.0);
        assert!(tag.tags(&train));
    }

    #[test]
    fn tag_rejects_foreign_columns() {
        let index = test_index();
        let cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        let train: Vec<String> = (0..50)
            .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
            .collect();
        let tag = infer_tag(&index, &cfg, &train, 0.0).unwrap();
        let foreign: Vec<String> = (0..50).map(|i| format!("user-{i}")).collect();
        assert!(!tag.tags(&foreign));
        assert!(!tag.tags(&Vec::<String>::new()));
    }

    #[test]
    fn tag_set_agrees_with_per_rule_loop() {
        let rules = [
            ("time", "<digit>{2}:<digit>{2}:<digit>{2}"),
            ("date", "<digit>{4}-<digit>{2}-<digit>{2}"),
            ("word", "<lower>+"),
        ];
        let tags: Vec<(&str, TagRule)> = rules
            .iter()
            .map(|(n, p)| (*n, TagRule::new(av_pattern::parse(p).unwrap(), 1, 0.0)))
            .collect();
        let mut set = TagSet::new();
        for (name, rule) in &tags {
            set.insert(name, rule);
        }
        assert_eq!(set.len(), 3);
        let columns: [&[&str]; 3] = [
            &["12:30:59", "01:02:03", "oops"],
            &["2021-04-13", "2021-04-14"],
            &["hello", "world", "12:00:00"],
        ];
        for col in columns {
            for v in col {
                let want: Vec<&str> = tags
                    .iter()
                    .filter(|(_, r)| r.tags_value(v))
                    .map(|(n, _)| *n)
                    .collect();
                assert_eq!(set.tags_value(v), want, "per-value loop on {v:?}");
            }
            let want: Vec<&str> = tags
                .iter()
                .filter(|(_, r)| r.tags(col))
                .map(|(n, _)| *n)
                .collect();
            assert_eq!(set.tag_column(col), want, "majority vote on {col:?}");
        }
    }

    #[test]
    fn empty_column_is_rejected() {
        let index = test_index();
        let cfg = FmdvConfig::default();
        assert!(matches!(
            infer_tag(&index, &cfg, Vec::<String>::new(), 0.1),
            Err(InferError::EmptyColumn)
        ));
    }
}
