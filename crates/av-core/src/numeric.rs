//! Numeric-column validation — the paper's §7 future-work direction
//! ("extending the same validation principle also to numeric data").
//!
//! For columns whose values parse as numbers, syntactic patterns carry
//! little signal (`<num>` matches everything); what drifts is the
//! *distribution*. This rule records robust training statistics (quantiles
//! with a tolerance margin) and applies the same two-sample philosophy as
//! §4: alarm only when the out-of-range rate at test time increased
//! significantly over its training value.

use av_stats::HomogeneityTest;

use crate::api::{Explanation, Tally, ValidationSession, Validator, Verdict};
use crate::config::{FmdvConfig, InferError};
use crate::rule::{distributional_report, ValidationReport};

/// A numeric range rule with a distributional alarm.
#[derive(Debug, Clone)]
pub struct NumericRule {
    /// Lower bound (q1 − margin·IQR at training time).
    pub lo: f64,
    /// Upper bound (q3 + margin·IQR).
    pub hi: f64,
    /// Fraction of training values outside `[lo, hi]`.
    pub train_oor: f64,
    /// Training sample size.
    pub train_size: usize,
    /// Homogeneity test used at validation time.
    pub test: HomogeneityTest,
    /// Significance level.
    pub alpha: f64,
}

fn parse_numeric(v: &str) -> Option<f64> {
    let t = v.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<f64>().ok().filter(|x| x.is_finite())
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl NumericRule {
    /// Learn a range rule. Declines (`NoHypothesis`) unless at least
    /// `min_numeric_frac` of the training values parse as finite numbers.
    /// `margin` widens the interquartile range (Tukey-fence style; 3.0 by
    /// default via [`NumericRule::infer_default`]).
    pub fn infer<S: AsRef<str>>(
        train: &[S],
        cfg: &FmdvConfig,
        min_numeric_frac: f64,
        margin: f64,
    ) -> Result<NumericRule, InferError> {
        if train.is_empty() {
            return Err(InferError::EmptyColumn);
        }
        let mut nums: Vec<f64> = train
            .iter()
            .filter_map(|v| parse_numeric(v.as_ref()))
            .collect();
        if (nums.len() as f64) < min_numeric_frac * train.len() as f64 || nums.len() < 4 {
            return Err(InferError::NoHypothesis);
        }
        nums.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q1 = quantile(&nums, 0.25);
        let q3 = quantile(&nums, 0.75);
        let iqr = (q3 - q1).max(f64::EPSILON * q3.abs().max(1.0));
        let lo = q1 - margin * iqr;
        let hi = q3 + margin * iqr;
        let oor = train
            .iter()
            .filter(|v| match parse_numeric(v.as_ref()) {
                Some(x) => x < lo || x > hi,
                None => true, // non-numeric counts as out of range
            })
            .count();
        Ok(NumericRule {
            lo,
            hi,
            train_oor: oor as f64 / train.len() as f64,
            train_size: train.len(),
            test: cfg.test,
            alpha: cfg.alpha,
        })
    }

    /// [`NumericRule::infer`] with the standard knobs (≥ 95% numeric,
    /// Tukey margin 3.0).
    pub fn infer_default<S: AsRef<str>>(
        train: &[S],
        cfg: &FmdvConfig,
    ) -> Result<NumericRule, InferError> {
        NumericRule::infer(train, cfg, 0.95, 3.0)
    }

    /// Is a single value numeric and inside the learned range?
    pub fn conforms(&self, value: &str) -> bool {
        matches!(parse_numeric(value), Some(x) if x >= self.lo && x <= self.hi)
    }

    /// Validate a future column: alarm when the out-of-range rate rose
    /// significantly versus training time. Streams any borrowed iterator
    /// without copying values.
    pub fn validate<I>(&self, values: I) -> ValidationReport
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut session = ValidationSession::new(self);
        for v in values {
            session.push(v.as_ref());
        }
        session.finish()
    }
}

impl Validator for NumericRule {
    fn describe(&self) -> String {
        format!("numeric range [{:.4}, {:.4}]", self.lo, self.hi)
    }

    fn check(&self, value: &str) -> Verdict {
        Verdict::conforming(self.conforms(value))
    }

    fn explain(&self, value: &str) -> Option<Explanation> {
        if self.conforms(value) {
            return None;
        }
        let expected = format!("a finite number in [{:.4}, {:.4}]", self.lo, self.hi);
        let reason = match parse_numeric(value) {
            None => format!("{value:?} does not parse as a finite number"),
            Some(x) if x < self.lo => {
                format!(
                    "{x} is below the learned range [{:.4}, {:.4}]",
                    self.lo, self.hi
                )
            }
            Some(x) => {
                format!(
                    "{x} is above the learned range [{:.4}, {:.4}]",
                    self.lo, self.hi
                )
            }
        };
        Some(Explanation {
            reason,
            failed_at: None,
            span: None,
            expected: Some(expected),
            matched_prefix: None,
        })
    }

    fn finish(&self, tally: Tally) -> ValidationReport {
        distributional_report(
            tally,
            self.train_oor,
            self.train_size,
            self.test,
            self.alpha,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[f64]) -> Vec<String> {
        vals.iter().map(|v| v.to_string()).collect()
    }

    fn uniform(n: usize, lo: f64, hi: f64) -> Vec<String> {
        (0..n)
            .map(|i| (lo + (hi - lo) * i as f64 / n as f64).to_string())
            .collect()
    }

    #[test]
    fn stable_distribution_passes() {
        let rule =
            NumericRule::infer_default(&uniform(200, 0.0, 100.0), &FmdvConfig::default()).unwrap();
        let report = rule.validate(uniform(200, 2.0, 98.0));
        assert!(!report.flagged);
    }

    #[test]
    fn range_blowup_is_flagged() {
        let rule =
            NumericRule::infer_default(&uniform(200, 0.0, 100.0), &FmdvConfig::default()).unwrap();
        // Values 100× out of range — a unit change (cents vs dollars).
        let report = rule.validate(uniform(200, 5000.0, 10000.0));
        assert!(report.flagged);
        assert!(report.nonconforming > 150);
    }

    #[test]
    fn non_numeric_column_declines() {
        let words: Vec<String> = (0..50).map(|i| format!("w{i}")).collect();
        assert!(matches!(
            NumericRule::infer_default(&words, &FmdvConfig::default()),
            Err(InferError::NoHypothesis)
        ));
    }

    #[test]
    fn occasional_outlier_is_tolerated() {
        let mut train = uniform(500, 0.0, 100.0);
        train.push("100000".into()); // one training outlier → θ_train > 0
        let rule = NumericRule::infer_default(&train, &FmdvConfig::default()).unwrap();
        let mut future = uniform(500, 0.0, 100.0);
        future.push("90000".into());
        assert!(!rule.validate(&future).flagged);
    }

    #[test]
    fn nulls_count_as_out_of_range() {
        let rule =
            NumericRule::infer_default(&uniform(100, 0.0, 10.0), &FmdvConfig::default()).unwrap();
        let mut future = uniform(60, 0.0, 10.0);
        future.extend((0..40).map(|_| "NULL".to_string()));
        assert!(rule.validate(&future).flagged);
    }

    #[test]
    fn explain_names_the_violated_bound() {
        let rule =
            NumericRule::infer_default(&uniform(100, 0.0, 100.0), &FmdvConfig::default()).unwrap();
        assert!(Validator::explain(&rule, "50").is_none());
        let e = Validator::explain(&rule, "1e9").unwrap();
        assert!(e.reason.contains("above"), "{}", e.reason);
        let e = Validator::explain(&rule, "-1e9").unwrap();
        assert!(e.reason.contains("below"), "{}", e.reason);
        let e = Validator::explain(&rule, "NULL").unwrap();
        assert!(e.reason.contains("parse"), "{}", e.reason);
        assert!(e.expected.unwrap().contains("finite number"));
    }

    #[test]
    fn negative_and_float_values() {
        let rule = NumericRule::infer_default(
            &col(&[-5.5, -2.0, -1.0, 0.0, 1.5, 2.5, 4.0, 5.0]),
            &FmdvConfig::default(),
        )
        .unwrap();
        assert!(rule.conforms("-3.3"));
        assert!(rule.conforms("4.9"));
        assert!(!rule.conforms("99999"));
        assert!(!rule.conforms("abc"));
    }
}
