//! Vertical cuts (§3): segment a composite column and validate each segment
//! with its own pattern, minimizing the summed FPR via the Eq. 11 dynamic
//! program (the min-FPR scores have optimal substructure).

use crate::config::{FmdvConfig, InferError};
use crate::fmdv::{Candidate, SelectObjective, StreamingSelect};
use av_index::PatternIndex;
use av_pattern::{analyze_column, CoarseGroup, EnumScratch, Pattern, Token};

/// A "structural" segment candidate: when a segment consists purely of
/// symbol/whitespace positions whose literal is constant across all
/// conforming training values (e.g. the `"|"` separators of Fig. 8), the
/// literal itself is a zero-risk validation pattern — no corpus evidence is
/// needed for a delimiter, and a delimiter change *should* trip validation.
/// Alphanumeric constants (years, status words) never get this shortcut:
/// they must pay their corpus-estimated FPR, otherwise the DP would happily
/// pin `Lit("2019")` and false-alarm in January.
fn structural_literal(
    group: &CoarseGroup,
    s: usize,
    e: usize,
    min_support: usize,
) -> Option<Pattern> {
    let mut tokens: Vec<Token> = Vec::with_capacity(e - s);
    for pos in &group.positions[s..e] {
        let mut lit: Option<Token> = None;
        for (t, bits) in &pos.options {
            match t {
                Token::Lit(_) => {
                    if bits.count() >= min_support {
                        lit = Some(t.clone());
                    }
                }
                Token::Sym(_) | Token::SymPlus | Token::SpacePlus | Token::AnyPlus => {}
                _ => return None, // an alphanumeric-class position
            }
        }
        tokens.push(lit?);
    }
    Some(Pattern::new(tokens))
}

/// Result of the vertical-cut optimization.
#[derive(Debug, Clone)]
pub(crate) struct VerticalSolution {
    /// Chosen pattern per segment, in order.
    pub segments: Vec<Candidate>,
    /// Aggregated expected FPR (sum, or max in optimistic mode).
    pub total_fpr: f64,
}

impl VerticalSolution {
    /// Stitch the segment patterns back into one full-column pattern.
    pub fn full_pattern(&self) -> Pattern {
        let mut p = Pattern::empty();
        for c in &self.segments {
            p = p.concat(&c.pattern);
        }
        p
    }

    /// The weakest coverage across segments (reported on the final rule).
    /// Structural literal segments (cov = `u64::MAX`) are skipped — they
    /// carry no corpus evidence requirement.
    pub fn min_coverage(&self) -> u64 {
        self.segments
            .iter()
            .map(|c| c.cov)
            .filter(|&c| c != u64::MAX)
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// DP objective mode. The first pass prefers specificity (maximum issue
/// detection); if the chosen segmentation blows the Eq. 9 FPR budget, a
/// second pass minimizes the aggregated FPR instead — the conservative
/// reading of Eq. 8 — so feasible columns are never rejected just because
/// their most specific cover is too risky.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DpMode {
    SpecificFirst,
    MinFpr,
}

/// Objective value of a (partial) segmentation: lexicographic over
/// (total specificity, aggregated FPR) or the reverse, per [`DpMode`].
/// Specificity sums are comparable across segmentations because every
/// segmentation covers the same token positions exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Score {
    spec: u32,
    fpr: f64,
}

impl Score {
    fn better_than(&self, other: &Score, mode: DpMode) -> bool {
        match mode {
            DpMode::SpecificFirst => {
                self.spec < other.spec || (self.spec == other.spec && self.fpr < other.fpr)
            }
            DpMode::MinFpr => {
                self.fpr < other.fpr || (self.fpr == other.fpr && self.spec < other.spec)
            }
        }
    }
}

/// One DP cell: best achievable score for segment `[s, e)` plus the argmin.
#[derive(Debug, Clone)]
enum Cell {
    Infeasible,
    Direct(Candidate, Score),
    Split(usize, Score),
}

impl Cell {
    fn score(&self) -> Option<Score> {
        match self {
            Cell::Infeasible => None,
            Cell::Direct(_, s) | Cell::Split(_, s) => Some(*s),
        }
    }
}

/// Solve FMDV-V / the vertical part of FMDV-VH on an analyzed group.
///
/// `min_support` controls the per-segment hypothesis space: the group's
/// sample size for pure vertical cuts (every value must conform), or
/// `⌈(1−θ)·sample⌉` when combined with horizontal cuts.
///
/// Each DP cell streams thousands of candidate segments through
/// [`crate::fmdv::StreamingSelect`]; every probe is one fingerprint-shard
/// lookup against the immutable index snapshot, so the DP runs untouched
/// by concurrent shard republishes on the serving side.
pub(crate) fn solve_vertical(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    group: &CoarseGroup,
    min_support: usize,
) -> Result<VerticalSolution, InferError> {
    match solve_vertical_mode(index, cfg, group, min_support, DpMode::SpecificFirst) {
        Ok(sol) if sol.total_fpr <= cfg.r => Ok(sol),
        // Specific cover too risky (or none): fall back to pure FPR
        // minimization before declaring infeasibility.
        _ => {
            let sol = solve_vertical_mode(index, cfg, group, min_support, DpMode::MinFpr)?;
            if sol.total_fpr > cfg.r {
                return Err(InferError::NoFeasible);
            }
            Ok(sol)
        }
    }
}

fn solve_vertical_mode(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    group: &CoarseGroup,
    min_support: usize,
    mode: DpMode,
) -> Result<VerticalSolution, InferError> {
    let n = group.positions.len();
    if n == 0 {
        // A column of empty strings: the empty pattern validates it.
        return Ok(VerticalSolution {
            segments: vec![],
            total_fpr: 0.0,
        });
    }
    let agg = |a: f64, b: f64| {
        if cfg.optimistic_vertical {
            a.max(b)
        } else {
            a + b
        }
    };
    // dp[s][e] for 0 ≤ s < e ≤ n, bottom-up over widths (Eq. 11).
    let mut dp: Vec<Vec<Cell>> = vec![vec![Cell::Infeasible; n + 1]; n + 1];
    // One enumeration scratch serves every DP cell of this solve.
    let mut scratch = EnumScratch::default();
    for width in 1..=n {
        for s in 0..=(n - width) {
            let e = s + width;
            // Option 1: no split — treat C[s,e) as one column, solve FMDV.
            let mut best = Cell::Infeasible;
            if width <= cfg.max_segment_tokens {
                // Per-segment constraints: coverage (Eq. 10). The FPR budget
                // (Eq. 9) is enforced on the aggregate at the end, but no
                // single segment may exceed it either. Selection streams:
                // each emission is ranked by its fingerprint-looked-up
                // stats and only winners are materialized — a cell offers
                // up to `max_patterns` candidates and keeps one.
                let objective = match mode {
                    DpMode::SpecificFirst => SelectObjective::SpecificFirst,
                    DpMode::MinFpr => SelectObjective::LowestFpr,
                };
                let mut sel = StreamingSelect::new(objective, cfg.r, cfg.m);
                group.for_each_pattern(s, e, min_support, &cfg.pattern, &mut scratch, |sp| {
                    sel.offer_streamed(index, sp);
                });
                if let Some(p) = structural_literal(group, s, e, min_support) {
                    sel.offer(Candidate {
                        pattern: p,
                        fpr: 0.0,
                        cov: u64::MAX,
                    });
                }
                if let Some(c) = sel.into_best() {
                    let score = Score {
                        spec: c.specificity(),
                        fpr: c.fpr,
                    };
                    best = Cell::Direct(c, score);
                }
            }
            // Option 2: best two-way split (sub-solutions already optimal).
            #[allow(clippy::needless_range_loop)] // t indexes dp twice, as split point
            for t in s + 1..e {
                if let (Some(left), Some(right)) = (dp[s][t].score(), dp[t][e].score()) {
                    let combined = Score {
                        spec: left.spec + right.spec,
                        fpr: agg(left.fpr, right.fpr),
                    };
                    if best
                        .score()
                        .is_none_or(|cur| combined.better_than(&cur, mode))
                    {
                        best = Cell::Split(t, combined);
                    }
                }
            }
            dp[s][e] = best;
        }
    }
    let total = dp[0][n].score().ok_or(InferError::NoFeasible)?;
    let total_fpr = total.fpr;
    let mut segments = Vec::new();
    reconstruct(&dp, 0, n, &mut segments);
    Ok(VerticalSolution {
        segments,
        total_fpr,
    })
}

fn reconstruct(dp: &[Vec<Cell>], s: usize, e: usize, out: &mut Vec<Candidate>) {
    match &dp[s][e] {
        Cell::Direct(c, _) => out.push(c.clone()),
        Cell::Split(t, _) => {
            reconstruct(dp, s, *t, out);
            reconstruct(dp, *t, e, out);
        }
        Cell::Infeasible => unreachable!("reconstructing an infeasible cell"),
    }
}

/// FMDV-V entry point: requires a homogeneous column (all values share one
/// coarse structure); heterogeneity is FMDV-H's job (§4).
pub(crate) fn infer_fmdv_v(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    train: &[&str],
) -> Result<VerticalSolution, InferError> {
    if train.is_empty() {
        return Err(InferError::EmptyColumn);
    }
    let analysis = analyze_column(train, &cfg.pattern);
    if !analysis.is_homogeneous() {
        return Err(InferError::NoHypothesis);
    }
    let group = &analysis.groups[0];
    solve_vertical(index, cfg, group, group.sample_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, Column, LakeProfile};
    use av_index::{IndexConfig, PatternIndex};
    use av_pattern::matches;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_index() -> PatternIndex {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(800), 77);
        let cols: Vec<&Column> = corpus.columns().collect();
        PatternIndex::build(&cols, &IndexConfig::default())
    }

    fn composite_column(n: usize, seed: u64) -> Vec<String> {
        // "date-iso|time-24h|epoch" — a Fig. 8-style composite whose atomic
        // sub-domains are popular in the corpus (so the index carries their
        // segment patterns), joined by a separator no atomic column has.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                format!(
                    "{}-{:02}-{:02}|{:02}:{:02}:{:02}|{}",
                    rng.random_range(2010..2030),
                    rng.random_range(1..13),
                    rng.random_range(1..29),
                    rng.random_range(0..24),
                    rng.random_range(0..60),
                    rng.random_range(0..60),
                    rng.random_range(1_400_000_000u64..1_700_000_000),
                )
            })
            .collect()
    }

    fn refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    #[test]
    fn vertical_cut_handles_wide_composite_columns() {
        let index = test_index();
        let mut cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        cfg.max_segment_tokens = index.tau;
        let train = composite_column(60, 5);
        let solution = infer_fmdv_v(&index, &cfg, &refs(&train));
        // The composite column is ~19 tokens wide — too wide for any single
        // indexed pattern — yet the DP must find a feasible segmentation.
        let solution = solution.expect("vertical cut should find a solution");
        assert!(solution.segments.len() >= 2, "should actually cut");
        let full = solution.full_pattern();
        for v in &train {
            assert!(matches(&full, v), "{full} !~ {v}");
        }
        assert!(solution.total_fpr <= cfg.r);
    }

    #[test]
    fn heterogeneous_column_is_rejected() {
        let index = test_index();
        let cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        let train = vec!["123".to_string(), "abc-def".to_string()];
        assert_eq!(
            infer_fmdv_v(&index, &cfg, &refs(&train)).err(),
            Some(InferError::NoHypothesis)
        );
    }

    #[test]
    fn empty_train_is_rejected() {
        let index = test_index();
        let cfg = FmdvConfig::default();
        let train: Vec<String> = vec![];
        assert!(matches!(
            infer_fmdv_v(&index, &cfg, &refs(&train)),
            Err(InferError::EmptyColumn)
        ));
    }

    #[test]
    fn solution_reports_min_coverage() {
        let index = test_index();
        let mut cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        cfg.max_segment_tokens = index.tau;
        let train = composite_column(40, 9);
        if let Ok(sol) = infer_fmdv_v(&index, &cfg, &refs(&train)) {
            assert!(sol.min_coverage() >= cfg.m);
        }
    }

    #[test]
    fn optimistic_aggregation_also_solves() {
        // The optimistic (`max`) aggregation is an ablation; both modes
        // must produce budget-respecting solutions on the same column
        // (their chosen segmentations may legitimately differ).
        let index = test_index();
        let mut pess = FmdvConfig::scaled_for_corpus(index.num_columns);
        pess.max_segment_tokens = index.tau;
        let mut opt = pess.clone();
        opt.optimistic_vertical = true;
        let train = composite_column(40, 11);
        let a = infer_fmdv_v(&index, &pess, &refs(&train)).expect("pessimistic solves");
        let b = infer_fmdv_v(&index, &opt, &refs(&train)).expect("optimistic solves");
        assert!(a.total_fpr <= pess.r);
        assert!(b.total_fpr <= opt.r);
        for v in &train {
            assert!(av_pattern::matches(&a.full_pattern(), v));
            assert!(av_pattern::matches(&b.full_pattern(), v));
        }
    }
}
