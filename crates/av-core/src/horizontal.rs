//! Horizontal cuts (§4): tolerate up to a θ fraction of non-conforming
//! values (ad-hoc specials like `"-"` or `"NULL"`, Fig. 9).
//!
//! Deciding feasibility of FMDV-H is NP-hard in general (Theorem 2), but in
//! practice non-conforming values rarely share structure with the normal
//! ones, so the paper optimizes greedily: discard values whose patterns do
//! not intersect with most others, then solve FMDV on the conforming rest.
//! Our grouped analysis makes this direct — the dominant coarse group *is*
//! the conforming subset.

use crate::config::{FmdvConfig, InferError};
use crate::fmdv::{Candidate, SelectObjective, StreamingSelect};
use crate::vertical::{solve_vertical, VerticalSolution};
use av_index::PatternIndex;
use av_pattern::{analyze_column, CoarseGroup, EnumScratch};

/// Pick the dominant group if it covers at least `(1-θ)` of the column
/// (Eq. 16's feasibility precondition under the greedy strategy).
fn dominant_group(
    analysis: &av_pattern::ColumnAnalysis,
    theta: f64,
) -> Result<&CoarseGroup, InferError> {
    let group = analysis.dominant().ok_or(InferError::NoHypothesis)?;
    let frac = group.count as f64 / analysis.total_values as f64;
    if frac + 1e-12 < 1.0 - theta {
        return Err(InferError::NoHypothesis);
    }
    Ok(group)
}

/// Support floor inside the dominant group so that global support satisfies
/// Eq. 16: `matched ≥ (1-θ)|C|`, given the group already covers
/// `count/total` of the column.
fn group_min_support(group: &CoarseGroup, total: usize, theta: f64) -> usize {
    let need_global = (1.0 - theta) * total as f64;
    let group_frac = group.count as f64 / group.sample_size as f64;
    // support/sample × count/total ≥ 1-θ  ⇒  support ≥ (1-θ)·total·sample/count
    let min = (need_global / group_frac).ceil() as usize;
    min.clamp(1, group.sample_size)
}

/// FMDV-H (Eq. 12–16): single-pattern inference tolerating θ outliers.
pub(crate) fn infer_fmdv_h(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    train: &[&str],
) -> Result<Candidate, InferError> {
    if train.is_empty() {
        return Err(InferError::EmptyColumn);
    }
    let analysis = analyze_column(train, &cfg.pattern);
    let group = dominant_group(&analysis, cfg.theta)?;
    let min_support = group_min_support(group, analysis.total_values, cfg.theta);
    let mut scratch = EnumScratch::default();
    let mut sel = StreamingSelect::new(SelectObjective::SpecificFirst, cfg.r, cfg.m);
    group.for_each_pattern(
        0,
        group.positions.len(),
        min_support,
        &cfg.pattern,
        &mut scratch,
        |sp| sel.offer_streamed(index, sp),
    );
    sel.into_best().ok_or(InferError::NoFeasible)
}

/// FMDV-VH: horizontal cut to the dominant group, then the vertical DP with
/// the relaxed support floor.
pub(crate) fn infer_fmdv_vh(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    train: &[&str],
) -> Result<VerticalSolution, InferError> {
    if train.is_empty() {
        return Err(InferError::EmptyColumn);
    }
    let analysis = analyze_column(train, &cfg.pattern);
    let group = dominant_group(&analysis, cfg.theta)?;
    let min_support = group_min_support(group, analysis.total_values, cfg.theta);
    solve_vertical(index, cfg, group, min_support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, Column, LakeProfile};
    use av_index::{IndexConfig, PatternIndex};
    use av_pattern::matches;

    fn test_index() -> PatternIndex {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(800), 77);
        let cols: Vec<&Column> = corpus.columns().collect();
        PatternIndex::build(&cols, &IndexConfig::default())
    }

    fn refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    /// Fig. 9-style column: a corpus-popular domain (24h times) with one
    /// ad-hoc "-" outlier.
    fn dirty_column() -> Vec<String> {
        let mut v: Vec<String> = (0..99)
            .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
            .collect();
        v.push("-".to_string());
        v
    }

    #[test]
    fn horizontal_cut_tolerates_adhoc_values() {
        let index = test_index();
        let mut cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        cfg.theta = 0.05;
        let train = dirty_column();
        let result = infer_fmdv_h(&index, &cfg, &refs(&train));
        // Basic FMDV fails on this column (no common hypothesis)…
        assert!(matches!(
            crate::fmdv::infer_fmdv(&index, &cfg, &refs(&train), false),
            Err(InferError::NoHypothesis)
        ));
        // …but FMDV-H finds the digit-group pattern of Example 9.
        let c = result.expect("FMDV-H should succeed");
        let conforming = train.iter().filter(|v| matches(&c.pattern, v)).count();
        assert!(conforming >= 99, "pattern must cover the 99 normal values");
        assert!(
            !matches(&c.pattern, "-"),
            "the outlier stays non-conforming"
        );
    }

    #[test]
    fn tolerance_zero_requires_full_coverage() {
        let index = test_index();
        let mut cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        cfg.theta = 0.0;
        let train = dirty_column();
        assert!(matches!(
            infer_fmdv_h(&index, &cfg, &refs(&train)),
            Err(InferError::NoHypothesis)
        ));
    }

    #[test]
    fn too_many_outliers_exceed_tolerance() {
        let index = test_index();
        let mut cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        cfg.theta = 0.05;
        // 20% outliers > θ = 5%.
        let mut train: Vec<String> = (0..80).map(|i| format!("{:05}", i)).collect();
        train.extend((0..20).map(|_| "-".to_string()));
        assert!(matches!(
            infer_fmdv_h(&index, &cfg, &refs(&train)),
            Err(InferError::NoHypothesis)
        ));
    }

    #[test]
    fn vh_combines_both_cuts() {
        let index = test_index();
        let mut cfg = FmdvConfig::scaled_for_corpus(index.num_columns);
        cfg.theta = 0.05;
        cfg.max_segment_tokens = index.tau;
        // Wide composite column with an ad-hoc special value.
        let mut train: Vec<String> = (0..99)
            .map(|i| {
                format!(
                    "{}-{:02}-{:02}|{:02}:{:02}:{:02}",
                    2010 + (i % 20),
                    (i % 12) + 1,
                    (i % 28) + 1,
                    i % 24,
                    (i * 7) % 60,
                    (i * 13) % 60,
                )
            })
            .collect();
        train.push("NULL".to_string());
        let sol = infer_fmdv_vh(&index, &cfg, &refs(&train)).expect("VH should succeed");
        let full = sol.full_pattern();
        let conforming = train.iter().filter(|v| matches(&full, v)).count();
        assert_eq!(conforming, 99, "{full}");
    }

    #[test]
    fn group_min_support_bounds() {
        // Group covering 99/100 values, sample 99, θ = 0.05:
        // support ≥ 0.95·100·99/99 = 95.
        let train = dirty_column();
        let cfg = FmdvConfig::default();
        let analysis = analyze_column(&train, &cfg.pattern);
        let g = analysis.dominant().unwrap();
        let ms = group_min_support(g, analysis.total_values, 0.05);
        assert_eq!(ms, 95);
        // θ = 0 on a fully-covering group needs full support.
        let clean: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let a2 = analyze_column(&clean, &cfg.pattern);
        let g2 = a2.dominant().unwrap();
        assert_eq!(group_min_support(g2, 50, 0.0), g2.sample_size);
    }
}
