//! Configuration of the FMDV optimization problems.

use av_pattern::PatternConfig;
use av_stats::HomogeneityTest;

/// Which Auto-Validate variant to run (§2–§4, compared in Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Basic FMDV (§2.3): requires a homogeneous query column.
    Fmdv,
    /// FMDV-V (§3): vertical cuts via segmentation dynamic programming.
    FmdvV,
    /// FMDV-H (§4): horizontal cuts tolerating non-conforming values.
    FmdvH,
    /// FMDV-VH: vertical and horizontal cuts combined — the paper's best.
    #[default]
    FmdvVH,
    /// CMDV ablation (§2.3): minimize coverage instead of FPR. The paper
    /// reports this is less effective; included for the ablation bench.
    Cmdv,
}

impl Variant {
    /// Short display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Fmdv => "FMDV",
            Variant::FmdvV => "FMDV-V",
            Variant::FmdvH => "FMDV-H",
            Variant::FmdvVH => "FMDV-VH",
            Variant::Cmdv => "CMDV",
        }
    }
}

/// Knobs of the FMDV family (Eq. 5–16).
#[derive(Debug, Clone)]
pub struct FmdvConfig {
    /// Target FPR threshold `r` (Eq. 6). Paper sweeps 0–0.1 (Fig. 12a) and
    /// uses `r = 0.1` for the headline FMDV-VH run (Fig. 11).
    pub r: f64,
    /// Minimum coverage `m` (Eq. 7). Paper recommends ≥ 100 on the full
    /// enterprise corpus (Fig. 12b); scale proportionally to corpus size.
    pub m: u64,
    /// Non-conforming tolerance θ (Eq. 16) for the horizontal-cut variants.
    pub theta: f64,
    /// Significance level of the two-sample homogeneity test at validation
    /// time (§4); the paper uses two-tailed Fisher's exact at 0.01.
    pub alpha: f64,
    /// Which homogeneity test to use.
    pub test: HomogeneityTest,
    /// Pattern-generation knobs (τ, caps, coverage threshold).
    pub pattern: PatternConfig,
    /// Maximum tokens per vertical-cut segment — must not exceed the τ used
    /// to build the offline index, or segments will miss index entries.
    pub max_segment_tokens: usize,
    /// Use `max` instead of `sum` when aggregating segment FPRs in the
    /// vertical DP (the paper's "optimistic" alternative — reported less
    /// effective; exposed for the ablation bench).
    pub optimistic_vertical: bool,
}

impl Default for FmdvConfig {
    fn default() -> Self {
        FmdvConfig {
            r: 0.1,
            m: 100,
            theta: 0.1,
            alpha: 0.01,
            test: HomogeneityTest::FisherExact,
            pattern: PatternConfig::default(),
            max_segment_tokens: 13,
            optimistic_vertical: false,
        }
    }
}

impl FmdvConfig {
    /// Config scaled for a corpus of `num_columns` columns: the paper's
    /// `m = 100` assumes a 7M-column corpus; for smaller (simulated)
    /// corpora, require the same *fraction* of columns, with a floor of 3.
    pub fn scaled_for_corpus(num_columns: u64) -> FmdvConfig {
        let m = ((num_columns as f64) * (100.0 / 7_000_000.0)).ceil() as u64;
        FmdvConfig {
            m: m.max(3),
            ..Default::default()
        }
    }
}

/// Why rule inference failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The training column is empty.
    EmptyColumn,
    /// `H(C)` is empty (heterogeneous column under the basic variant).
    NoHypothesis,
    /// No hypothesis satisfies the FPR/coverage constraints.
    NoFeasible,
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::EmptyColumn => write!(f, "training column is empty"),
            InferError::NoHypothesis => {
                write!(f, "hypothesis space is empty (heterogeneous column)")
            }
            InferError::NoFeasible => {
                write!(f, "no pattern satisfies the FPR/coverage constraints")
            }
        }
    }
}

impl std::error::Error for InferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = FmdvConfig::default();
        assert_eq!(c.r, 0.1);
        assert_eq!(c.m, 100);
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.test, HomogeneityTest::FisherExact);
        assert_eq!(Variant::default(), Variant::FmdvVH);
    }

    #[test]
    fn scaled_coverage_has_floor() {
        assert_eq!(FmdvConfig::scaled_for_corpus(7_000_000).m, 100);
        assert_eq!(FmdvConfig::scaled_for_corpus(70_000).m, 3);
        assert_eq!(FmdvConfig::scaled_for_corpus(10).m, 3);
    }

    #[test]
    fn labels() {
        assert_eq!(Variant::FmdvVH.label(), "FMDV-VH");
        assert_eq!(Variant::Cmdv.label(), "CMDV");
    }
}
