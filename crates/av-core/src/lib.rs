//! # av-core — the Auto-Validate inference engine
//!
//! Implements the paper's four FMDV variants (§2–§4) on top of the offline
//! [`av_index::PatternIndex`]:
//!
//! * **FMDV** (Eq. 5–7): minimum-FPR pattern from the hypothesis space
//!   `H(C)` subject to `FPR_T(h) ≤ r` and `Cov_T(h) ≥ m`;
//! * **FMDV-V** (§3): vertical cuts — the Eq. 11 segmentation DP for
//!   composite columns;
//! * **FMDV-H** (§4): horizontal cuts — tolerate a θ fraction of ad-hoc
//!   non-conforming values, with a two-sample homogeneity test at
//!   validation time;
//! * **FMDV-VH**: both, the paper's best variant;
//! * plus the **CMDV** ablation and the **Auto-Tag** dual (§2.3).
//!
//! Every inferred rule — pattern, numeric, or dictionary — implements the
//! unified [`Validator`] trait: `check(&str)` for single
//! values, `validate_batch` for borrowed batches, and a streaming
//! [`ValidationSession`] whose `finish()` is bit-identical to batch
//! validation. Configuration flows through one fluent
//! [`AutoValidateBuilder`]:
//!
//! ```no_run
//! use av_core::{AutoValidateBuilder, Validator, Variant};
//!
//! # fn demo(columns: &[&av_corpus::Column]) -> Result<(), Box<dyn std::error::Error>> {
//! // One builder configures indexing, pattern generation, and FMDV.
//! let builder = AutoValidateBuilder::new().fpr_target(0.1).tau(13);
//! let index = builder.build_index(columns);
//! let engine = builder.engine(&index);
//!
//! // Inference borrows its inputs — no owned Vec<String> required.
//! let rule = engine.infer(["Mar 01 2019", "Mar 02 2019"], Variant::FmdvVH)?;
//!
//! // Validate in batch… (any &str iterator)
//! assert!(!rule.validate_batch(["Apr 01 2019"]).flagged);
//!
//! // …or stream values one at a time in O(1) memory.
//! let mut session = rule.session();
//! session.push("Apr 02 2019");
//! session.push("Apr 03 2019");
//! assert!(!session.finish().flagged);
//! # Ok(()) }
//! ```

mod api;
mod autotag;
mod classify;
mod config;
mod dictionary;
mod fmdv;
mod horizontal;
mod msa;
mod numeric;
mod rule;
mod vertical;
mod wire;

pub use api::{
    AutoValidateBuilder, CheckScratch, Explanation, Report, Tally, ValidationSession, Validator,
    Verdict,
};
pub use autotag::{infer_tag, TagRule, TagSet};
pub use classify::{RuleCheck, RuleSet};
pub use config::{FmdvConfig, InferError, Variant};
pub use dictionary::DictionaryRule;
pub use msa::{align_pair, alignment_gap_distance, Aligned};
pub use numeric::NumericRule;
pub use rule::{ValidationReport, ValidationRule};
pub use wire::{pct_decode, pct_encode, WireError};

/// Either kind of inferred rule (see [`AutoValidate::infer_auto`]).
#[derive(Debug, Clone)]
pub enum AnyRule {
    /// A data-domain pattern rule (machine-generated data).
    Pattern(ValidationRule),
    /// A numeric range rule (§7 future-work extension).
    Numeric(NumericRule),
    /// A vocabulary rule (fixed-dictionary data, §6).
    Dictionary(DictionaryRule),
}

impl AnyRule {
    /// Does a single value conform?
    pub fn conforms(&self, value: &str) -> bool {
        match self {
            AnyRule::Pattern(r) => r.conforms(value),
            AnyRule::Numeric(r) => r.conforms(value),
            AnyRule::Dictionary(r) => r.conforms(value),
        }
    }

    /// Validate a future column with the §4 distributional test, streaming
    /// any borrowed iterator.
    pub fn validate<I>(&self, values: I) -> ValidationReport
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut session = ValidationSession::new(self);
        for v in values {
            session.push(v.as_ref());
        }
        session.finish()
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            AnyRule::Pattern(r) => format!("pattern {}", r.pattern()),
            AnyRule::Numeric(r) => Validator::describe(r),
            AnyRule::Dictionary(r) => Validator::describe(r),
        }
    }

    /// The compiled token program, for pattern rules.
    pub fn compiled_program(&self) -> Option<&av_pattern::CompiledPattern> {
        match self {
            AnyRule::Pattern(r) => Some(r.compiled()),
            AnyRule::Numeric(_) | AnyRule::Dictionary(_) => None,
        }
    }
}

/// Edit distance between the compiled token programs of two rules — the
/// metric behind "nearest rule" suggestions. Non-pattern rules contribute
/// an empty program, so their distance to a pattern rule is that pattern's
/// full instruction count (a timestamp pattern is as far from a vocabulary
/// as it is from nothing), and two non-pattern rules are at distance 0.
pub fn program_distance(a: &AnyRule, b: &AnyRule) -> usize {
    match (a.compiled_program(), b.compiled_program()) {
        (Some(pa), Some(pb)) => pa.distance(pb),
        (Some(p), None) | (None, Some(p)) => p.num_instructions(),
        (None, None) => 0,
    }
}

/// Among `candidates`, find the rule that *accepts* `value`, ranked by
/// [`program_distance`] from the rule it failed (ties break on the smaller
/// name, so the suggestion is deterministic). Returns the winning
/// candidate's name and its distance.
///
/// This is the "which rule did this value actually belong to" suggestion:
/// when a column swap routes statuses into the timestamp feed, the
/// timestamp rule's non-conforming values conform to the status rule, and
/// that rule is the nearest conforming one.
pub fn nearest_conforming_rule<'a, I>(
    value: &str,
    from: &AnyRule,
    candidates: I,
) -> Option<(&'a str, usize)>
where
    I: IntoIterator<Item = (&'a str, &'a AnyRule)>,
{
    let mut best: Option<(&str, usize)> = None;
    for (name, rule) in candidates {
        if !rule.conforms(value) {
            continue;
        }
        let d = program_distance(from, rule);
        let better = match best {
            None => true,
            Some((bn, bd)) => d < bd || (d == bd && name < bn),
        };
        if better {
            best = Some((name, d));
        }
    }
    best
}

impl Validator for AnyRule {
    fn describe(&self) -> String {
        AnyRule::describe(self)
    }

    fn check(&self, value: &str) -> Verdict {
        match self {
            AnyRule::Pattern(r) => r.check(value),
            AnyRule::Numeric(r) => r.check(value),
            AnyRule::Dictionary(r) => r.check(value),
        }
    }

    fn check_with(&self, value: &str, scratch: &mut CheckScratch) -> Verdict {
        match self {
            AnyRule::Pattern(r) => r.check_with(value, scratch),
            AnyRule::Numeric(r) => r.check_with(value, scratch),
            AnyRule::Dictionary(r) => r.check_with(value, scratch),
        }
    }

    fn explain(&self, value: &str) -> Option<Explanation> {
        match self {
            AnyRule::Pattern(r) => r.explain(value),
            AnyRule::Numeric(r) => r.explain(value),
            AnyRule::Dictionary(r) => r.explain(value),
        }
    }

    fn finish(&self, tally: Tally) -> Report {
        match self {
            AnyRule::Pattern(r) => r.finish(tally),
            AnyRule::Numeric(r) => r.finish(tally),
            AnyRule::Dictionary(r) => r.finish(tally),
        }
    }
}

use av_index::PatternIndex;

/// The Auto-Validate inference engine: an offline index plus configuration.
pub struct AutoValidate<'a> {
    index: &'a PatternIndex,
    /// The FMDV configuration in effect.
    pub config: FmdvConfig,
}

impl<'a> AutoValidate<'a> {
    /// Create an engine over a built (or loaded) index.
    pub fn new(index: &'a PatternIndex, config: FmdvConfig) -> AutoValidate<'a> {
        AutoValidate { index, config }
    }

    /// Start configuring a full stack fluently (index + engine knobs).
    pub fn builder() -> AutoValidateBuilder {
        AutoValidateBuilder::new()
    }

    /// The underlying index.
    pub fn index(&self) -> &PatternIndex {
        self.index
    }

    /// Infer a validation rule from training values with the given variant.
    ///
    /// Accepts any iterator of string-likes (`&Vec<String>`, `&[&str]`,
    /// `["a", "b"]`, a decoder stream, …); values are borrowed throughout
    /// inference — tokenization, hypothesis enumeration, and the training
    /// θ count all run on `&str` with no intermediate `Vec<String>`.
    pub fn infer<I>(&self, train: I, variant: Variant) -> Result<ValidationRule, InferError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let held: Vec<I::Item> = train.into_iter().collect();
        let train: Vec<&str> = held.iter().map(|v| v.as_ref()).collect();
        self.infer_borrowed(&train, variant)
    }

    fn infer_borrowed(
        &self,
        train: &[&str],
        variant: Variant,
    ) -> Result<ValidationRule, InferError> {
        let cfg = &self.config;
        let (pattern, fpr, cov) = match variant {
            Variant::Fmdv => {
                let c = fmdv::infer_fmdv(self.index, cfg, train, false)?;
                (c.pattern, c.fpr, c.cov)
            }
            Variant::Cmdv => {
                let c = fmdv::infer_fmdv(self.index, cfg, train, true)?;
                (c.pattern, c.fpr, c.cov)
            }
            Variant::FmdvV => {
                let sol = vertical::infer_fmdv_v(self.index, cfg, train)?;
                let cov = sol.min_coverage();
                (sol.full_pattern(), sol.total_fpr, cov)
            }
            Variant::FmdvH => {
                let c = horizontal::infer_fmdv_h(self.index, cfg, train)?;
                (c.pattern, c.fpr, c.cov)
            }
            Variant::FmdvVH => {
                let sol = horizontal::infer_fmdv_vh(self.index, cfg, train)?;
                let cov = sol.min_coverage();
                (sol.full_pattern(), sol.total_fpr, cov)
            }
        };
        // Building the rule compiles the pattern; the exact training-time
        // non-conforming fraction θ_C(h) (§4) is then counted through the
        // compiled program rather than the reference matcher.
        let mut rule =
            ValidationRule::new(pattern, 0.0, train.len(), fpr, cov, cfg.test, cfg.alpha);
        let miss = train.iter().filter(|v| !rule.conforms(v)).count();
        rule.train_nonconforming = miss as f64 / train.len().max(1) as f64;
        Ok(rule)
    }

    /// Infer with the paper's best variant (FMDV-VH).
    pub fn infer_default<I>(&self, train: I) -> Result<ValidationRule, InferError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        self.infer(train, Variant::FmdvVH)
    }

    /// Infer an Auto-Tag pattern (the dual problem, §2.3).
    pub fn infer_tag<I>(&self, train: I, fnr_budget: f64) -> Result<TagRule, InferError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let held: Vec<I::Item> = train.into_iter().collect();
        let train: Vec<&str> = held.iter().map(|v| v.as_ref()).collect();
        autotag::infer_tag_borrowed(self.index, &self.config, &train, fnr_budget)
    }

    /// Infer a rule with automatic fallback: try the pattern engine
    /// (FMDV-VH), and when no syntactic domain exists — fixed-vocabulary
    /// columns like statuses or country names (§6) — fall back to a
    /// [`DictionaryRule`] with the same distributional test.
    pub fn infer_auto<I>(&self, train: I) -> Result<AnyRule, InferError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let held: Vec<I::Item> = train.into_iter().collect();
        let train: Vec<&str> = held.iter().map(|v| v.as_ref()).collect();
        match self.infer_borrowed(&train, Variant::FmdvVH) {
            Ok(rule) => Ok(AnyRule::Pattern(rule)),
            Err(InferError::EmptyColumn) => Err(InferError::EmptyColumn),
            Err(first) => {
                // No syntactic domain: numeric columns with heterogeneous
                // formats (ints mixed with floats) get a range rule (§7);
                // fixed vocabularies get a dictionary (§6).
                if let Ok(rule) = NumericRule::infer_default(&train, &self.config) {
                    return Ok(AnyRule::Numeric(rule));
                }
                DictionaryRule::infer(&train, &self.config, 0.1)
                    .map(AnyRule::Dictionary)
                    .map_err(|_| first)
            }
        }
    }
}

#[cfg(test)]
mod nearest_rule_tests {
    use super::*;
    use av_stats::HomogeneityTest;

    fn pattern_rule(pattern: &str) -> AnyRule {
        AnyRule::Pattern(ValidationRule::new(
            av_pattern::parse(pattern).unwrap(),
            0.0,
            100,
            0.001,
            50,
            HomogeneityTest::FisherExact,
            0.01,
        ))
    }

    fn dict_rule(words: &[&str]) -> AnyRule {
        let train: Vec<String> = words
            .iter()
            .flat_map(|w| std::iter::repeat_n(w.to_string(), 10))
            .collect();
        AnyRule::Dictionary(DictionaryRule::infer(&train, &FmdvConfig::default(), 0.5).unwrap())
    }

    #[test]
    fn suggestion_picks_the_conforming_rule_nearest_in_program_space() {
        let timestamp = pattern_rule("<digit>{4}-<digit>{2}-<digit>{2}");
        let dashed = pattern_rule("<digit>{4}-<digit>{2}");
        let word = pattern_rule("<letter>+");
        let catalog = [
            ("dashed", &dashed),
            ("word", &word),
            ("timestamp", &timestamp),
        ];
        // A truncated date fails the timestamp rule but conforms to the
        // shorter dashed rule — the program-nearest conforming candidate.
        let (name, d) = nearest_conforming_rule("2019-07", &timestamp, catalog).unwrap();
        assert_eq!(name, "dashed");
        assert!(d < program_distance(&timestamp, &word));
        // A word only conforms to the word rule.
        let (name, _) = nearest_conforming_rule("Delivered", &timestamp, catalog).unwrap();
        assert_eq!(name, "word");
        // Nothing conforms → no suggestion.
        assert!(nearest_conforming_rule("???", &timestamp, catalog).is_none());
    }

    #[test]
    fn column_swap_suggests_the_other_column_rule() {
        let ts = pattern_rule("<digit>{4}-<digit>{2}-<digit>{2}T<digit>{2}:<digit>{2}Z");
        let status = dict_rule(&["Delivered", "Pending", "Rejected"]);
        let catalog = [("event_time", &ts), ("status", &status)];
        // Statuses landing in the timestamp feed point back at the status
        // rule — the explanation for a column swap.
        let (name, _) = nearest_conforming_rule("Pending", &ts, catalog).unwrap();
        assert_eq!(name, "status");
        // Distance involving a programless rule is the pattern's length.
        assert_eq!(
            program_distance(&ts, &status),
            ts.compiled_program().unwrap().num_instructions()
        );
        assert_eq!(program_distance(&status, &status), 0);
    }
}
