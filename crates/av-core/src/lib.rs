//! # av-core — the Auto-Validate inference engine
//!
//! Implements the paper's four FMDV variants (§2–§4) on top of the offline
//! [`av_index::PatternIndex`]:
//!
//! * **FMDV** (Eq. 5–7): minimum-FPR pattern from the hypothesis space
//!   `H(C)` subject to `FPR_T(h) ≤ r` and `Cov_T(h) ≥ m`;
//! * **FMDV-V** (§3): vertical cuts — the Eq. 11 segmentation DP for
//!   composite columns;
//! * **FMDV-H** (§4): horizontal cuts — tolerate a θ fraction of ad-hoc
//!   non-conforming values, with a two-sample homogeneity test at
//!   validation time;
//! * **FMDV-VH**: both, the paper's best variant;
//! * plus the **CMDV** ablation and the **Auto-Tag** dual (§2.3).
//!
//! ```no_run
//! use av_core::{AutoValidate, FmdvConfig, Variant};
//! use av_index::{IndexConfig, PatternIndex};
//!
//! # fn demo(columns: &[&av_corpus::Column]) -> Result<(), Box<dyn std::error::Error>> {
//! let index = PatternIndex::build(columns, &IndexConfig::default());
//! let av = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));
//! let train = vec!["Mar 01 2019".to_string(), "Mar 02 2019".to_string()];
//! let rule = av.infer(&train, Variant::FmdvVH)?;
//! let report = rule.validate(&["Apr 01 2019".to_string()]);
//! assert!(!report.flagged);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

mod autotag;
mod config;
mod dictionary;
mod fmdv;
mod horizontal;
mod msa;
mod numeric;
mod rule;
mod vertical;
mod wire;

pub use autotag::{infer_tag, TagRule};
pub use config::{FmdvConfig, InferError, Variant};
pub use dictionary::DictionaryRule;
pub use msa::{align_pair, alignment_gap_distance, Aligned};
pub use numeric::NumericRule;
pub use rule::{ValidationReport, ValidationRule};
pub use wire::{pct_decode, pct_encode, WireError};

/// Either kind of inferred rule (see [`AutoValidate::infer_auto`]).
#[derive(Debug, Clone)]
pub enum AnyRule {
    /// A data-domain pattern rule (machine-generated data).
    Pattern(ValidationRule),
    /// A numeric range rule (§7 future-work extension).
    Numeric(NumericRule),
    /// A vocabulary rule (fixed-dictionary data, §6).
    Dictionary(DictionaryRule),
}

impl AnyRule {
    /// Does a single value conform?
    pub fn conforms(&self, value: &str) -> bool {
        match self {
            AnyRule::Pattern(r) => r.conforms(value),
            AnyRule::Numeric(r) => r.conforms(value),
            AnyRule::Dictionary(r) => r.conforms(value),
        }
    }

    /// Validate a future column with the §4 distributional test.
    pub fn validate<S: AsRef<str>>(&self, values: &[S]) -> ValidationReport {
        match self {
            AnyRule::Pattern(r) => r.validate(values),
            AnyRule::Numeric(r) => r.validate(values),
            AnyRule::Dictionary(r) => r.validate(values),
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            AnyRule::Pattern(r) => format!("pattern {}", r.pattern),
            AnyRule::Numeric(r) => format!("numeric range [{:.4}, {:.4}]", r.lo, r.hi),
            AnyRule::Dictionary(r) => format!("dictionary of {} values", r.dictionary.len()),
        }
    }
}

use av_index::PatternIndex;
use av_pattern::matches;

/// The Auto-Validate inference engine: an offline index plus configuration.
pub struct AutoValidate<'a> {
    index: &'a PatternIndex,
    /// The FMDV configuration in effect.
    pub config: FmdvConfig,
}

impl<'a> AutoValidate<'a> {
    /// Create an engine over a built (or loaded) index.
    pub fn new(index: &'a PatternIndex, config: FmdvConfig) -> AutoValidate<'a> {
        AutoValidate { index, config }
    }

    /// The underlying index.
    pub fn index(&self) -> &PatternIndex {
        self.index
    }

    /// Infer a validation rule from training values with the given variant.
    pub fn infer<S: AsRef<str>>(
        &self,
        train: &[S],
        variant: Variant,
    ) -> Result<ValidationRule, InferError> {
        let cfg = &self.config;
        let (pattern, fpr, cov) = match variant {
            Variant::Fmdv => {
                let c = fmdv::infer_fmdv(self.index, cfg, train, false)?;
                (c.pattern, c.fpr, c.cov)
            }
            Variant::Cmdv => {
                let c = fmdv::infer_fmdv(self.index, cfg, train, true)?;
                (c.pattern, c.fpr, c.cov)
            }
            Variant::FmdvV => {
                let sol = vertical::infer_fmdv_v(self.index, cfg, train)?;
                let cov = sol.min_coverage();
                (sol.full_pattern(), sol.total_fpr, cov)
            }
            Variant::FmdvH => {
                let c = horizontal::infer_fmdv_h(self.index, cfg, train)?;
                (c.pattern, c.fpr, c.cov)
            }
            Variant::FmdvVH => {
                let sol = horizontal::infer_fmdv_vh(self.index, cfg, train)?;
                let cov = sol.min_coverage();
                (sol.full_pattern(), sol.total_fpr, cov)
            }
        };
        // Exact training-time non-conforming fraction θ_C(h) (§4).
        let miss = train
            .iter()
            .filter(|v| !matches(&pattern, v.as_ref()))
            .count();
        Ok(ValidationRule {
            pattern,
            train_nonconforming: miss as f64 / train.len().max(1) as f64,
            train_size: train.len(),
            expected_fpr: fpr,
            coverage: cov,
            test: cfg.test,
            alpha: cfg.alpha,
        })
    }

    /// Infer with the paper's best variant (FMDV-VH).
    pub fn infer_default<S: AsRef<str>>(&self, train: &[S]) -> Result<ValidationRule, InferError> {
        self.infer(train, Variant::FmdvVH)
    }

    /// Infer an Auto-Tag pattern (the dual problem, §2.3).
    pub fn infer_tag<S: AsRef<str>>(
        &self,
        train: &[S],
        fnr_budget: f64,
    ) -> Result<TagRule, InferError> {
        autotag::infer_tag(self.index, &self.config, train, fnr_budget)
    }

    /// Infer a rule with automatic fallback: try the pattern engine
    /// (FMDV-VH), and when no syntactic domain exists — fixed-vocabulary
    /// columns like statuses or country names (§6) — fall back to a
    /// [`DictionaryRule`] with the same distributional test.
    pub fn infer_auto<S: AsRef<str>>(&self, train: &[S]) -> Result<AnyRule, InferError> {
        match self.infer(train, Variant::FmdvVH) {
            Ok(rule) => Ok(AnyRule::Pattern(rule)),
            Err(InferError::EmptyColumn) => Err(InferError::EmptyColumn),
            Err(first) => {
                // No syntactic domain: numeric columns with heterogeneous
                // formats (ints mixed with floats) get a range rule (§7);
                // fixed vocabularies get a dictionary (§6).
                if let Ok(rule) = NumericRule::infer_default(train, &self.config) {
                    return Ok(AnyRule::Numeric(rule));
                }
                DictionaryRule::infer(train, &self.config, 0.1)
                    .map(AnyRule::Dictionary)
                    .map_err(|_| first)
            }
        }
    }
}
