//! The unified zero-copy validation API.
//!
//! Every rule this workspace can infer — the four FMDV variants (which all
//! produce a [`ValidationRule`]), the numeric and dictionary fallbacks, and
//! each baseline in `av-baselines` — validates through one trait:
//!
//! * [`Validator::check`] judges a single borrowed `&str`;
//! * [`Validator::validate_batch`] consumes any `&str` iterator and returns
//!   a [`Report`], allocating nothing per value;
//! * [`ValidationSession`] is the streaming form: feed values one at a time
//!   in O(1) memory, then [`ValidationSession::finish`] produces a report
//!   **bit-identical** to batch validation of the same values.
//!
//! The bit-identity is by construction, not by convention: `validate_batch`
//! *is* a session driven by a loop, and [`Validator::finish`] is required
//! to be a pure function of the final [`Tally`] plus the validator's frozen
//! training state.
//!
//! [`AutoValidateBuilder`] is the fluent entry point that consolidates the
//! index, pattern-generation, and FMDV knobs which previously had to be
//! threaded through three separate config structs.

use crate::config::{FmdvConfig, Variant};
use crate::AutoValidate;
use av_index::{IndexConfig, PatternIndex};
use av_stats::HomogeneityTest;

/// The column-level outcome of validation — one struct for every validator.
///
/// (An alias of [`crate::ValidationReport`]; the name `Report` is the one
/// the trait-level API uses.)
pub type Report = crate::rule::ValidationReport;

/// Outcome of checking one value against a validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The value conforms to the learned rule.
    Conform,
    /// The value does not conform.
    Nonconform,
}

impl Verdict {
    /// `true` → [`Verdict::Conform`], `false` → [`Verdict::Nonconform`].
    #[inline]
    pub fn conforming(ok: bool) -> Verdict {
        if ok {
            Verdict::Conform
        } else {
            Verdict::Nonconform
        }
    }

    /// Is this the conforming verdict?
    #[inline]
    pub fn is_conform(self) -> bool {
        matches!(self, Verdict::Conform)
    }
}

/// Streaming counters: everything a validator may use to conclude a column.
///
/// Deliberately tiny — a session carries no values, only these two counts,
/// which is what makes streaming O(1) and bit-identical to batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Values checked so far.
    pub checked: usize,
    /// Values that did not conform.
    pub nonconforming: usize,
}

impl Tally {
    /// Record one verdict.
    #[inline]
    pub fn record(&mut self, verdict: Verdict) {
        self.checked += 1;
        if !verdict.is_conform() {
            self.nonconforming += 1;
        }
    }

    /// Non-conforming fraction (0.0 on an empty tally).
    #[inline]
    pub fn fraction(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.nonconforming as f64 / self.checked as f64
        }
    }
}

/// Reusable working memory for [`Validator::check_with`].
///
/// Pattern rules run their compiled matching programs through the held
/// [`av_pattern::MatchScratch`] (backtracking stack + failure memo); other
/// rule kinds ignore it. Buffers keep their capacity across checks, so a
/// scratch reused over a stream of values makes steady-state validation
/// allocation-free. Creating one allocates nothing.
#[derive(Debug, Default)]
pub struct CheckScratch {
    pattern: av_pattern::MatchScratch,
}

impl CheckScratch {
    /// A fresh scratch (no allocation until first use).
    pub fn new() -> CheckScratch {
        CheckScratch::default()
    }

    /// The pattern-matching scratch, for validators backed by an
    /// [`av_pattern::CompiledPattern`].
    pub fn pattern_scratch(&mut self) -> &mut av_pattern::MatchScratch {
        &mut self.pattern
    }
}

/// Why a single value failed a rule — the detail behind a
/// [`Verdict::Nonconform`].
///
/// Produced by [`Validator::explain`]. Pattern rules fill the positional
/// fields from the compiled matcher's [`av_pattern::MatchTrace`]; other
/// rule kinds fill what makes sense for them (a dictionary rule points at
/// the nearest vocabulary entry, a numeric rule at the violated bound).
/// All byte offsets lie on `char` boundaries of the explained value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// One-line human-readable reason for the failure.
    pub reason: String,
    /// Byte offset where the value stopped conforming: everything before
    /// it matched the rule (or its nearest reference string).
    pub failed_at: Option<usize>,
    /// Failing byte span `[start, end)` — the first offending character
    /// (empty, `start == end`, when the value ended too early).
    pub span: Option<(usize, usize)>,
    /// What the rule expected at the failure point.
    pub expected: Option<String>,
    /// The prefix of the value that did conform.
    pub matched_prefix: Option<String>,
}

impl Explanation {
    /// An explanation carrying only a reason (no positional detail).
    pub fn new(reason: impl Into<String>) -> Explanation {
        Explanation {
            reason: reason.into(),
            failed_at: None,
            span: None,
            expected: None,
            matched_prefix: None,
        }
    }
}

/// A learned validation rule, usable one value at a time or over batches.
///
/// Object-safe core: [`Validator::describe`], [`Validator::check`] /
/// [`Validator::check_with`], [`Validator::explain`] and
/// [`Validator::finish`] make up the vtable, so heterogeneous rules
/// dispatch behind `Box<dyn Validator>` / `Arc<dyn Validator>` (the trait
/// requires `Send + Sync`, so boxed validators cross threads freely). The
/// provided [`Validator::validate_batch`] and [`Validator::session`] build
/// on that core and never allocate per value.
pub trait Validator: Send + Sync {
    /// Human-readable description of the learned rule.
    fn describe(&self) -> String;

    /// Check a single borrowed value.
    fn check(&self, value: &str) -> Verdict;

    /// Check a single borrowed value using caller-owned working memory.
    ///
    /// Must return exactly the verdict of [`Validator::check`] — the
    /// scratch only lets hot paths (sessions, batch workers) reuse buffers
    /// instead of allocating per value. The default ignores the scratch.
    fn check_with(&self, value: &str, scratch: &mut CheckScratch) -> Verdict {
        let _ = scratch;
        self.check(value)
    }

    /// Explain why `value` does not conform.
    ///
    /// Returns `None` when the value conforms — and also, in the default
    /// implementation, when the validator offers no diagnostic detail.
    /// Implementations must never return `Some` for a conforming value;
    /// this is the cold path, run only after a failed [`Validator::check`],
    /// so it may allocate freely.
    fn explain(&self, value: &str) -> Option<Explanation> {
        let _ = value;
        None
    }

    /// Conclude a column from its streamed [`Tally`].
    ///
    /// Must be a pure function of `tally` and the validator's frozen
    /// training-time state — this is what guarantees that a
    /// [`ValidationSession`] fed value-by-value finishes with a report
    /// bit-identical to [`Validator::validate_batch`] over the same values.
    fn finish(&self, tally: Tally) -> Report;

    /// Validate a batch of borrowed values.
    ///
    /// Implemented as a [`ValidationSession`] driven by a loop, so batch and
    /// streaming cannot diverge.
    fn validate_batch<'a, I>(&self, values: I) -> Report
    where
        Self: Sized,
        I: IntoIterator<Item = &'a str>,
    {
        let mut session = ValidationSession::new(self);
        for value in values {
            session.push(value);
        }
        session.finish()
    }

    /// Start a streaming validation session borrowing this validator.
    fn session(&self) -> ValidationSession<'_, Self>
    where
        Self: Sized,
    {
        ValidationSession::new(self)
    }
}

impl<V: Validator + ?Sized> Validator for &V {
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn check(&self, value: &str) -> Verdict {
        (**self).check(value)
    }
    fn check_with(&self, value: &str, scratch: &mut CheckScratch) -> Verdict {
        (**self).check_with(value, scratch)
    }
    fn explain(&self, value: &str) -> Option<Explanation> {
        (**self).explain(value)
    }
    fn finish(&self, tally: Tally) -> Report {
        (**self).finish(tally)
    }
}

impl<V: Validator + ?Sized> Validator for Box<V> {
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn check(&self, value: &str) -> Verdict {
        (**self).check(value)
    }
    fn check_with(&self, value: &str, scratch: &mut CheckScratch) -> Verdict {
        (**self).check_with(value, scratch)
    }
    fn explain(&self, value: &str) -> Option<Explanation> {
        (**self).explain(value)
    }
    fn finish(&self, tally: Tally) -> Report {
        (**self).finish(tally)
    }
}

impl<V: Validator + ?Sized> Validator for std::sync::Arc<V> {
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn check(&self, value: &str) -> Verdict {
        (**self).check(value)
    }
    fn check_with(&self, value: &str, scratch: &mut CheckScratch) -> Verdict {
        (**self).check_with(value, scratch)
    }
    fn explain(&self, value: &str) -> Option<Explanation> {
        (**self).explain(value)
    }
    fn finish(&self, tally: Tally) -> Report {
        (**self).finish(tally)
    }
}

/// A streaming validation pass: values go in one at a time, O(1) memory,
/// and [`ValidationSession::finish`] yields a [`Report`] bit-identical to
/// batch validation of the same values in the same order.
///
/// ```
/// use av_core::{ValidationSession, Validator, Verdict, Tally, Report};
///
/// struct DigitsOnly;
/// impl Validator for DigitsOnly {
///     fn describe(&self) -> String { "digits".into() }
///     fn check(&self, value: &str) -> Verdict {
///         Verdict::conforming(!value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()))
///     }
///     fn finish(&self, tally: Tally) -> Report {
///         let flagged = tally.nonconforming > 0;
///         Report {
///             checked: tally.checked,
///             nonconforming: tally.nonconforming,
///             nonconforming_frac: tally.fraction(),
///             p_value: if flagged { 0.0 } else { 1.0 },
///             flagged,
///         }
///     }
/// }
///
/// let v = DigitsOnly;
/// let mut session = v.session();
/// for value in ["12", "34", "x"] {
///     session.push(value);
/// }
/// let streamed = session.finish();
/// assert_eq!(streamed, v.validate_batch(["12", "34", "x"]));
/// assert!(streamed.flagged);
/// ```
#[derive(Debug)]
pub struct ValidationSession<'v, V = dyn Validator + 'v>
where
    V: Validator + ?Sized,
{
    validator: &'v V,
    tally: Tally,
    /// Reused across every [`ValidationSession::push`], so steady-state
    /// checking allocates nothing (the compiled pattern matcher's stack and
    /// memo grow once, then stay).
    scratch: CheckScratch,
}

impl<'v, V: Validator + ?Sized> ValidationSession<'v, V> {
    /// Begin a session over `validator` (works for unsized `dyn Validator`).
    pub fn new(validator: &'v V) -> ValidationSession<'v, V> {
        ValidationSession::with_scratch(validator, CheckScratch::new())
    }

    /// Begin a session with caller-provided working memory — the way batch
    /// workers run many sessions back to back without re-growing buffers.
    /// Recover the scratch with [`ValidationSession::finish_with_scratch`].
    pub fn with_scratch(validator: &'v V, scratch: CheckScratch) -> ValidationSession<'v, V> {
        ValidationSession {
            validator,
            tally: Tally::default(),
            scratch,
        }
    }

    /// Feed one value; returns its verdict.
    pub fn push(&mut self, value: &str) -> Verdict {
        let verdict = self.validator.check_with(value, &mut self.scratch);
        self.tally.record(verdict);
        verdict
    }

    /// Feed many values.
    pub fn extend<'a, I: IntoIterator<Item = &'a str>>(&mut self, values: I) {
        for value in values {
            self.push(value);
        }
    }

    /// Counters so far.
    pub fn tally(&self) -> Tally {
        self.tally
    }

    /// Conclude the column.
    pub fn finish(self) -> Report {
        self.validator.finish(self.tally)
    }

    /// Conclude the column and hand the scratch back for the next session.
    pub fn finish_with_scratch(self) -> (Report, CheckScratch) {
        (self.validator.finish(self.tally), self.scratch)
    }
}

/// Fluent configuration for the whole Auto-Validate stack: one builder
/// covering the offline index (τ, threads), pattern generation (sampling and
/// enumeration caps), and the FMDV optimization knobs (r, m, θ, α, test).
///
/// The builder keeps the paired knobs coherent — [`AutoValidateBuilder::tau`]
/// sets the indexing τ, the analyzer's token limit, *and* the vertical-cut
/// segment cap together, which previously required editing three structs in
/// lockstep.
///
/// ```no_run
/// use av_core::{AutoValidateBuilder, Validator, Variant};
///
/// # fn demo(columns: &[&av_corpus::Column]) -> Result<(), av_core::InferError> {
/// let builder = AutoValidateBuilder::new().fpr_target(0.1).theta(0.05).tau(13);
/// let index = builder.build_index(columns);
/// let engine = builder.engine(&index);
/// let rule = engine.infer(["Mar 01 2019", "Mar 02 2019"], Variant::FmdvVH)?;
/// assert!(!rule.validate_batch(["Apr 01 2019"]).flagged);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct AutoValidateBuilder {
    fmdv: FmdvConfig,
    index: IndexConfig,
    scale_coverage: bool,
}

impl Default for AutoValidateBuilder {
    fn default() -> Self {
        AutoValidateBuilder {
            fmdv: FmdvConfig::default(),
            index: IndexConfig::default(),
            scale_coverage: true,
        }
    }
}

impl AutoValidateBuilder {
    /// A builder with the paper's defaults and corpus-scaled coverage.
    pub fn new() -> AutoValidateBuilder {
        AutoValidateBuilder::default()
    }

    /// Target FPR threshold `r` (Eq. 6).
    pub fn fpr_target(mut self, r: f64) -> Self {
        self.fmdv.r = r;
        self
    }

    /// Fixed minimum coverage `m` (Eq. 7). Disables the default behavior of
    /// scaling `m` to the live corpus size at [`AutoValidateBuilder::engine`]
    /// time.
    pub fn coverage_floor(mut self, m: u64) -> Self {
        self.fmdv.m = m;
        self.scale_coverage = false;
        self
    }

    /// Re-enable corpus-proportional coverage scaling
    /// ([`FmdvConfig::scaled_for_corpus`], the default).
    pub fn coverage_scaled(mut self) -> Self {
        self.scale_coverage = true;
        self
    }

    /// Non-conforming tolerance θ (Eq. 16) for the horizontal variants.
    pub fn theta(mut self, theta: f64) -> Self {
        self.fmdv.theta = theta;
        self
    }

    /// Significance level of the validation-time homogeneity test.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.fmdv.alpha = alpha;
        self
    }

    /// Which two-sample homogeneity test to run at validation time.
    pub fn test(mut self, test: HomogeneityTest) -> Self {
        self.fmdv.test = test;
        self
    }

    /// Token limit τ (§2.4), applied consistently to offline indexing, the
    /// analyzer's per-value limit, and the vertical-cut segment cap.
    pub fn tau(mut self, tau: usize) -> Self {
        self.index.tau = tau;
        self.index.pattern.max_tokens = tau;
        self.fmdv.pattern.max_tokens = tau;
        self.fmdv.max_segment_tokens = tau;
        self
    }

    /// Values sampled per coarse group during analysis.
    pub fn sample_values(mut self, n: usize) -> Self {
        self.fmdv.pattern.sample_values = n;
        self.index.pattern.sample_values = n;
        self
    }

    /// Cap on fine-grained patterns enumerated per coarse group at query
    /// time (the offline indexing cap is configured independently and
    /// defaults to a tighter value).
    pub fn max_patterns(mut self, n: usize) -> Self {
        self.fmdv.pattern.max_patterns = n;
        self
    }

    /// Worker threads for the offline index build.
    pub fn index_threads(mut self, n: usize) -> Self {
        self.index.num_threads = n;
        self
    }

    /// log₂ of the index's fingerprint shard count (copy-on-write
    /// granularity for incremental [`av_index::IndexDelta`] merges). The
    /// indexed statistics are identical for every value; only how much of
    /// the index an ingest has to clone changes.
    pub fn shards(mut self, shard_bits: u32) -> Self {
        self.index.shard_bits = shard_bits;
        self
    }

    /// The FMDV configuration assembled so far (coverage still unscaled).
    pub fn fmdv_config(&self) -> &FmdvConfig {
        &self.fmdv
    }

    /// The index configuration assembled so far.
    pub fn index_config(&self) -> &IndexConfig {
        &self.index
    }

    /// Run the offline scan (§2.4) over corpus columns.
    pub fn build_index(&self, columns: &[&av_corpus::Column]) -> PatternIndex {
        PatternIndex::build(columns, &self.index)
    }

    /// An inference engine over a built (or loaded) index, resolving the
    /// coverage floor against the index's corpus size when scaling is on.
    pub fn engine<'a>(&self, index: &'a PatternIndex) -> AutoValidate<'a> {
        let mut config = self.fmdv.clone();
        if self.scale_coverage {
            config.m = FmdvConfig::scaled_for_corpus(index.num_columns).m;
        }
        AutoValidate::new(index, config)
    }

    /// Infer with the paper's best variant in one call:
    /// `builder.engine(&index).infer(train, Variant::FmdvVH)`.
    pub fn infer_default<I>(
        &self,
        index: &PatternIndex,
        train: I,
    ) -> Result<crate::ValidationRule, crate::InferError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        self.engine(index).infer(train, Variant::FmdvVH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::ValidationRule;
    use av_pattern::parse;

    fn rule() -> ValidationRule {
        ValidationRule::new(
            parse("<digit>{2}:<digit>{2}").unwrap(),
            0.0,
            100,
            0.001,
            40,
            HomogeneityTest::FisherExact,
            0.01,
        )
    }

    #[test]
    fn verdict_and_tally_bookkeeping() {
        let mut tally = Tally::default();
        tally.record(Verdict::Conform);
        tally.record(Verdict::Nonconform);
        tally.record(Verdict::conforming(true));
        assert_eq!(tally.checked, 3);
        assert_eq!(tally.nonconforming, 1);
        assert!((tally.fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(Tally::default().fraction(), 0.0);
    }

    #[test]
    fn session_matches_batch_exactly() {
        let r = rule();
        let values = ["09:30", "10:45", "bad", "23:59"];
        let mut session = r.session();
        for v in values {
            session.push(v);
        }
        let streamed = session.finish();
        let batch = r.validate_batch(values);
        assert_eq!(streamed, batch);
        assert_eq!(
            streamed.p_value.to_bits(),
            batch.p_value.to_bits(),
            "finish must be bitwise deterministic"
        );
    }

    #[test]
    fn dyn_dispatch_works_through_boxes_and_arcs() {
        let boxed: Box<dyn Validator> = Box::new(rule());
        assert!(boxed.check("12:34").is_conform());
        assert!(!boxed.check("x").is_conform());
        // Box<dyn Validator> is itself a Validator, so batch works on it.
        let report = boxed.validate_batch(["12:34", "09:00"]);
        assert!(!report.flagged);
        // And a bare &dyn can stream through an explicit session.
        let mut session = ValidationSession::new(&*boxed);
        session.extend(["12:34", "nope"]);
        assert_eq!(session.tally().nonconforming, 1);
        let arc: std::sync::Arc<dyn Validator> = std::sync::Arc::new(rule());
        assert_eq!(arc.describe(), rule().describe());
    }

    #[test]
    fn builder_knobs_propagate() {
        let b = AutoValidateBuilder::new()
            .fpr_target(0.05)
            .theta(0.2)
            .alpha(0.001)
            .tau(9)
            .sample_values(64)
            .max_patterns(1024)
            .index_threads(2)
            .coverage_floor(17);
        assert_eq!(b.fmdv_config().r, 0.05);
        assert_eq!(b.fmdv_config().theta, 0.2);
        assert_eq!(b.fmdv_config().alpha, 0.001);
        assert_eq!(b.fmdv_config().max_segment_tokens, 9);
        assert_eq!(b.fmdv_config().pattern.max_tokens, 9);
        assert_eq!(b.index_config().tau, 9);
        assert_eq!(b.index_config().pattern.max_tokens, 9);
        assert_eq!(b.fmdv_config().pattern.sample_values, 64);
        assert_eq!(b.fmdv_config().pattern.max_patterns, 1024);
        assert_eq!(b.index_config().num_threads, 2);
        assert_eq!(b.fmdv_config().m, 17);
    }

    #[test]
    fn builder_scales_coverage_to_corpus_by_default() {
        let b = AutoValidateBuilder::new();
        let index = PatternIndex::build(&[], &IndexConfig::default());
        // Empty corpus → the scaled floor of 3, not the paper's 100.
        assert_eq!(b.engine(&index).config.m, 3);
        let fixed = AutoValidateBuilder::new().coverage_floor(250);
        assert_eq!(fixed.engine(&index).config.m, 250);
    }
}
