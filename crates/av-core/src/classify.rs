//! Catalog-scale classification: a name-keyed rule collection backed by
//! one [`CatalogMatcher`].
//!
//! [`RuleSet`] is the bridge between the engine's heterogeneous rules and
//! `av-match`'s id-addressed automaton: pattern rules compile into the
//! shared NFA union, dictionary/numeric rules ride the residual check
//! list behind prefilters derived from their public shape (vocabulary
//! length bounds and first bytes; the characters a finite `f64` can start
//! with), and opaque validators (session baselines) join as bare checks.
//! One [`RuleSet::classify`] call then returns every conforming rule name
//! in a single scan of the value — the primitive behind the service's
//! `classify` op, auto-tagging, and the nearest-rule suggestion in
//! `explain`.

use crate::{nearest_conforming_rule, AnyRule};
use av_match::{CatalogMatcher, MatcherConfig, MatcherStats, Prefilter};
use std::collections::HashMap;
use std::sync::Arc;

/// A membership check for rules the matcher cannot compile (opaque
/// baseline validators).
pub type RuleCheck = Box<dyn Fn(&str) -> bool + Send + Sync>;

enum EntryKind {
    /// A catalog rule; ranking metadata comes from the rule itself.
    Rule(Arc<AnyRule>),
    /// An opaque conformance check (the check closure lives inside the
    /// matcher's residual list).
    Check,
}

struct SetEntry {
    name: String,
    kind: EntryKind,
}

/// A named rule collection classifying values against every member in one
/// scan.
///
/// Matching rule names are returned **ranked most-specific-first**:
/// dictionaries (exact vocabularies) before pattern rules (ordered by
/// their corpus-estimated false-positive rate — the safest pattern is the
/// most domain-specific), before numeric ranges, before opaque baseline
/// checks; ties break on the lexicographically smaller name, so rankings
/// are deterministic.
///
/// ```
/// use av_core::{AnyRule, DictionaryRule, FmdvConfig, RuleSet};
///
/// let mut set = RuleSet::new();
/// let vocab =
///     DictionaryRule::infer(&["red", "green", "red"], &FmdvConfig::default(), 1.0).unwrap();
/// set.insert("colors", AnyRule::Dictionary(vocab));
/// set.insert_check("nonempty", Box::new(|v: &str| !v.is_empty()));
///
/// assert_eq!(set.classify("red"), vec!["colors", "nonempty"]);
/// assert_eq!(set.classify("blue"), vec!["nonempty"]);
/// assert!(set.classify("").is_empty());
/// ```
pub struct RuleSet {
    matcher: CatalogMatcher,
    entries: Vec<Option<SetEntry>>,
    ids: HashMap<String, u32>,
    free: Vec<u32>,
    scratch: Vec<u32>,
}

impl Default for RuleSet {
    fn default() -> RuleSet {
        RuleSet::new()
    }
}

impl std::fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleSet")
            .field("rules", &self.ids.len())
            .field("matcher", &self.matcher.stats())
            .finish_non_exhaustive()
    }
}

impl RuleSet {
    /// Empty set with the default DFA budget.
    pub fn new() -> RuleSet {
        RuleSet::with_config(MatcherConfig::default())
    }

    /// Empty set with an explicit matcher config.
    pub fn with_config(config: MatcherConfig) -> RuleSet {
        RuleSet {
            matcher: CatalogMatcher::with_config(config),
            entries: Vec::new(),
            ids: HashMap::new(),
            free: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of rules in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Update generation of the underlying matcher (bumped per
    /// insert/remove — the epoch stamp callers use to detect staleness).
    pub fn generation(&self) -> u64 {
        self.matcher.generation()
    }

    /// The underlying matcher's shape/lifetime counters.
    pub fn matcher_stats(&self) -> MatcherStats {
        self.matcher.stats()
    }

    fn id_for(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.free.pop().unwrap_or_else(|| {
            self.entries.push(None);
            (self.entries.len() - 1) as u32
        });
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Add (or replace) a catalog rule under `name`.
    pub fn insert(&mut self, name: &str, rule: AnyRule) {
        let id = self.id_for(name);
        let rule = Arc::new(rule);
        match rule.compiled_program() {
            Some(program) => self.matcher.insert(id, program),
            None => {
                let check = Arc::clone(&rule);
                self.matcher.insert_residual(
                    id,
                    prefilter_for(&rule),
                    Box::new(move |v| check.conforms(v)),
                );
            }
        }
        self.entries[id as usize] = Some(SetEntry {
            name: name.to_string(),
            kind: EntryKind::Rule(rule),
        });
    }

    /// Add (or replace) an opaque conformance check under `name` —
    /// session baselines participate in classification through this.
    pub fn insert_check(&mut self, name: &str, check: RuleCheck) {
        let id = self.id_for(name);
        self.matcher.insert_residual(id, Prefilter::any(), check);
        self.entries[id as usize] = Some(SetEntry {
            name: name.to_string(),
            kind: EntryKind::Check,
        });
    }

    /// Remove `name`; returns whether it was present.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(id) = self.ids.remove(name) else {
            return false;
        };
        self.matcher.remove(id);
        self.entries[id as usize] = None;
        self.free.push(id);
        true
    }

    /// Every rule name whose rule `value` conforms to, ranked
    /// most-specific-first (see the type docs for the order).
    pub fn classify(&mut self, value: &str) -> Vec<String> {
        let Self {
            matcher,
            entries,
            scratch,
            ..
        } = self;
        matcher.classify_into(value, scratch);
        let mut hits: Vec<&SetEntry> = scratch
            .iter()
            .filter_map(|&id| entries[id as usize].as_ref())
            .collect();
        hits.sort_by(|a, b| {
            rank_key(a)
                .partial_cmp(&rank_key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        hits.iter().map(|e| e.name.clone()).collect()
    }

    /// The nearest-conforming-rule suggestion, catalog-size-independent.
    ///
    /// Classifying `value` yields exactly the rules that accept it (the
    /// precise limit of a prefix-furthest-reach shortlist: full reach plus
    /// accept), so ranking by [`crate::program_distance`] over that
    /// shortlist returns the same suggestion as the O(catalog) loop over
    /// all rules — property the service's explain tests pin down. Opaque
    /// checks and the excluded (failing) rule itself never win.
    pub fn nearest_conforming(
        &mut self,
        value: &str,
        from: &AnyRule,
        exclude: &str,
    ) -> Option<(String, usize)> {
        let Self {
            matcher,
            entries,
            scratch,
            ..
        } = self;
        matcher.classify_into(value, scratch);
        let candidates = scratch
            .iter()
            .filter_map(|&id| entries[id as usize].as_ref())
            .filter(|e| e.name != exclude)
            .filter_map(|e| match &e.kind {
                EntryKind::Rule(rule) => Some((e.name.as_str(), rule.as_ref())),
                EntryKind::Check => None,
            });
        nearest_conforming_rule(value, from, candidates).map(|(name, d)| (name.to_string(), d))
    }
}

/// Specificity rank: dictionaries, then patterns by estimated FPR, then
/// numeric ranges, then opaque checks; name breaks ties.
fn rank_key(entry: &SetEntry) -> (u8, f64, &str) {
    match &entry.kind {
        EntryKind::Rule(rule) => match rule.as_ref() {
            AnyRule::Dictionary(_) => (0, 0.0, entry.name.as_str()),
            AnyRule::Pattern(r) => (1, r.expected_fpr, entry.name.as_str()),
            AnyRule::Numeric(_) => (2, 0.0, entry.name.as_str()),
        },
        EntryKind::Check => (3, 0.0, entry.name.as_str()),
    }
}

/// Conservative admission prefilter for a non-pattern rule, derived from
/// its public shape. Must never reject a conforming value.
fn prefilter_for(rule: &AnyRule) -> Prefilter {
    match rule {
        AnyRule::Pattern(_) => Prefilter::any(),
        AnyRule::Dictionary(r) => {
            let Some(min) = r.dictionary.iter().map(|e| e.len()).min() else {
                // Empty vocabulary conforms to nothing; admit nothing.
                return Prefilter::any().len_bounds(1, 0);
            };
            let max = r.dictionary.iter().map(|e| e.len()).max().unwrap_or(min);
            Prefilter::any()
                .len_bounds(min, max)
                .first_bytes(r.dictionary.iter().filter_map(|e| e.bytes().next()))
        }
        AnyRule::Numeric(_) => {
            // A parseable finite f64 starts with a digit, sign, dot, or
            // (trimmed) whitespace — including the lead bytes of Unicode
            // whitespace, which `str::trim` also strips.
            let firsts = (b'0'..=b'9')
                .chain([b'+', b'-', b'.'])
                .chain([b' ', b'\t', b'\r', b'\n', 0x0B, 0x0C])
                .chain([0xC2, 0xE1, 0xE2, 0xE3]);
            Prefilter::any()
                .len_bounds(1, usize::MAX)
                .first_bytes(firsts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DictionaryRule, FmdvConfig, NumericRule};

    fn dict_rule(values: &[&str]) -> AnyRule {
        AnyRule::Dictionary(DictionaryRule::infer(values, &FmdvConfig::default(), 1.0).unwrap())
    }

    fn numeric_rule(lo: f64, hi: f64) -> AnyRule {
        let train: Vec<String> = (0..20)
            .map(|i| (lo + (hi - lo) * i as f64 / 19.0).to_string())
            .collect();
        AnyRule::Numeric(NumericRule::infer_default(&train, &FmdvConfig::default()).unwrap())
    }

    #[test]
    fn residual_rules_classify_through_prefilters() {
        let mut set = RuleSet::new();
        set.insert("colors", dict_rule(&["red", "green", "blue"]));
        set.insert("range", numeric_rule(0.0, 100.0));
        assert_eq!(set.classify("red"), vec!["colors"]);
        assert_eq!(set.classify("42"), vec!["range"]);
        assert_eq!(
            set.classify(" 42 "),
            vec!["range"],
            "trimmed parse still admitted"
        );
        assert!(set.classify("purple").is_empty());
        assert!(set.classify("").is_empty());
    }

    #[test]
    fn remove_and_replace_by_name() {
        let mut set = RuleSet::new();
        set.insert("vocab", dict_rule(&["a"]));
        assert_eq!(set.len(), 1);
        assert!(set.remove("vocab"));
        assert!(!set.remove("vocab"));
        assert!(set.is_empty());
        assert!(set.classify("a").is_empty());
        let g = set.generation();
        set.insert("vocab", dict_rule(&["b"]));
        assert!(set.generation() > g);
        assert_eq!(set.classify("b"), vec!["vocab"]);
    }

    #[test]
    fn ranking_prefers_specific_rules() {
        let mut set = RuleSet::new();
        set.insert("statuses", dict_rule(&["42"]));
        set.insert("range", numeric_rule(0.0, 100.0));
        set.insert_check("anything", Box::new(|_: &str| true));
        assert_eq!(set.classify("42"), vec!["statuses", "range", "anything"]);
    }
}
