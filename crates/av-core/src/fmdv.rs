//! The basic FMDV optimization (§2.3, Eq. 5–7) and the CMDV ablation.

use crate::config::{FmdvConfig, InferError};
use av_index::PatternIndex;
use av_pattern::{hypothesis_space, Pattern};

/// A hypothesis pattern with its index-provided statistics.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub pattern: Pattern,
    pub fpr: f64,
    pub cov: u64,
}

impl Candidate {
    /// Generality of the pattern (sum of per-token hierarchy depths);
    /// smaller = more specific = more data-quality issues caught.
    pub fn specificity(&self) -> u32 {
        self.pattern.specificity()
    }
}

/// Look up candidates in the offline index. Patterns the index has never
/// seen get coverage 0 (and are therefore infeasible under Eq. 7).
pub(crate) fn lookup_candidates(
    index: &PatternIndex,
    patterns: impl IntoIterator<Item = Pattern>,
) -> Vec<Candidate> {
    patterns
        .into_iter()
        .map(|pattern| match index.lookup(&pattern) {
            Some(stats) => Candidate {
                pattern,
                fpr: stats.fpr,
                cov: stats.cov,
            },
            None => Candidate {
                pattern,
                fpr: 1.0,
                cov: 0,
            },
        })
        .collect()
}

/// FMDV selection (Eq. 5–7): among candidates satisfying `FPR ≤ r` and
/// `Cov ≥ m`, pick the **most specific** pattern, breaking ties toward
/// lower FPR, then higher coverage.
///
/// Rationale: the FPR constraint is what prunes under-generalization —
/// Lemma 1 shows any pattern narrower than the true domain accumulates
/// impurity evidence and violates `FPR ≤ r`. Over-generalization, however,
/// is *not* penalized by FPR at all: a near-trivial pattern matches
/// everything, is never impure, and so has FPR ≈ 0 by construction. Taking
/// the literal minimum over FPR therefore degenerates to the most general
/// survivor; the useful minimizer — and the only reading consistent with
/// the paper's measured recall — is the most specific pattern inside the
/// feasible region, with FPR as the safety constraint.
pub(crate) fn select_min_fpr(candidates: &[Candidate], r: f64, m: u64) -> Option<Candidate> {
    candidates
        .iter()
        .filter(|c| c.fpr <= r && c.cov >= m)
        .min_by(|a, b| {
            a.specificity()
                .cmp(&b.specificity())
                .then_with(|| a.fpr.partial_cmp(&b.fpr).expect("FPRs are finite"))
                .then_with(|| b.cov.cmp(&a.cov))
                .then_with(|| a.pattern.cmp(&b.pattern))
        })
        .cloned()
}

/// Objective of a [`StreamingSelect`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SelectObjective {
    /// `(specificity, fpr, coverage desc, pattern)` — the
    /// [`select_min_fpr`] ordering.
    SpecificFirst,
    /// `(fpr, specificity, pattern)` — the literal Eq. 5 objective, used
    /// by the vertical DP's conservative fallback pass when the
    /// specificity-first segmentation exceeds the Eq. 9 budget.
    LowestFpr,
}

/// Streaming candidate selection: folds enumeration emissions one at a
/// time, keeping only the current winner. Equivalent to collecting every
/// candidate and running the corresponding `select_*` vector pass (same
/// ordering, same first-minimal tie behavior), but a [`Pattern`] is
/// materialized only when an emission actually wins (or fully ties) —
/// the vertical DP offers thousands of candidates per cell and keeps one.
#[derive(Debug)]
pub(crate) struct StreamingSelect {
    objective: SelectObjective,
    r: f64,
    m: u64,
    best: Option<Candidate>,
}

impl StreamingSelect {
    pub(crate) fn new(objective: SelectObjective, r: f64, m: u64) -> StreamingSelect {
        StreamingSelect {
            objective,
            r,
            m,
            best: None,
        }
    }

    /// Offer one streamed enumeration emission, looked up by fingerprint.
    /// The lookup routes straight to the fingerprint's index shard
    /// ([`PatternIndex::lookup_fingerprint`]), so a concurrent ingest
    /// republishing *other* shards never contends with this hot path —
    /// the snapshot's shard `Arc`s are immutable.
    pub(crate) fn offer_streamed(
        &mut self,
        index: &PatternIndex,
        sp: &av_pattern::StreamedPattern<'_>,
    ) {
        let (fpr, cov) = match index.lookup_fingerprint(sp.fingerprint) {
            Some(stats) => (stats.fpr, stats.cov),
            None => (1.0, 0),
        };
        self.consider(sp.specificity(), fpr, cov, || sp.to_pattern());
    }

    /// Offer a pre-built candidate (e.g. a structural-literal segment).
    pub(crate) fn offer(&mut self, c: Candidate) {
        let spec = c.specificity();
        let (fpr, cov) = (c.fpr, c.cov);
        self.consider(spec, fpr, cov, move || c.pattern);
    }

    fn consider(&mut self, spec: u32, fpr: f64, cov: u64, pattern: impl FnOnce() -> Pattern) {
        use std::cmp::Ordering;
        if !(fpr <= self.r && cov >= self.m) {
            return;
        }
        let Some(best) = &self.best else {
            self.best = Some(Candidate {
                pattern: pattern(),
                fpr,
                cov,
            });
            return;
        };
        let scalar = match self.objective {
            SelectObjective::SpecificFirst => spec
                .cmp(&best.specificity())
                .then_with(|| fpr.partial_cmp(&best.fpr).expect("FPRs are finite"))
                .then_with(|| best.cov.cmp(&cov)),
            SelectObjective::LowestFpr => fpr
                .partial_cmp(&best.fpr)
                .expect("FPRs are finite")
                .then_with(|| spec.cmp(&best.specificity())),
        };
        match scalar {
            Ordering::Greater => {}
            Ordering::Less => {
                self.best = Some(Candidate {
                    pattern: pattern(),
                    fpr,
                    cov,
                });
            }
            Ordering::Equal => {
                // Full scalar tie: materialize for the deterministic
                // pattern tie-break (earlier offers win ties, matching
                // `min_by`'s first-minimal semantics).
                let p = pattern();
                if p < best.pattern {
                    self.best = Some(Candidate {
                        pattern: p,
                        fpr,
                        cov,
                    });
                }
            }
        }
    }

    /// The selected candidate, if any feasible one was offered.
    pub(crate) fn into_best(self) -> Option<Candidate> {
        self.best
    }
}

/// CMDV selection (§2.3 alternative): minimize coverage instead. The paper
/// reports this is less effective in practice — kept for the ablation.
pub(crate) fn select_min_cov(candidates: &[Candidate], r: f64, m: u64) -> Option<Candidate> {
    candidates
        .iter()
        .filter(|c| c.fpr <= r && c.cov >= m)
        .min_by(|a, b| {
            a.cov
                .cmp(&b.cov)
                .then_with(|| a.fpr.partial_cmp(&b.fpr).expect("finite"))
                .then_with(|| a.pattern.cmp(&b.pattern))
        })
        .cloned()
}

/// Basic FMDV (§2.3): enumerate `H(C)`, look up pre-computed stats, pick the
/// feasible minimizer. Training values are borrowed end to end.
pub(crate) fn infer_fmdv(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    train: &[&str],
    minimize_coverage: bool,
) -> Result<Candidate, InferError> {
    if train.is_empty() {
        return Err(InferError::EmptyColumn);
    }
    let hypotheses = hypothesis_space(train, &cfg.pattern);
    if hypotheses.is_empty() {
        return Err(InferError::NoHypothesis);
    }
    let candidates = lookup_candidates(index, hypotheses);
    let chosen = if minimize_coverage {
        select_min_cov(&candidates, cfg.r, cfg.m)
    } else {
        select_min_fpr(&candidates, cfg.r, cfg.m)
    };
    chosen.ok_or(InferError::NoFeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::parse;

    fn cand(p: &str, fpr: f64, cov: u64) -> Candidate {
        Candidate {
            pattern: parse(p).unwrap(),
            fpr,
            cov,
        }
    }

    #[test]
    fn min_fpr_respects_constraints() {
        // Example 6 of the paper: h1/h2 infeasible on FPR, h5 feasible.
        let cands = vec![
            cand("<digit>{1}:<digit>{2}", 0.67, 5000), // h2-like
            cand("<digit>+:<digit>{2}", 0.0004, 5000), // h5-like
            cand("<digit>+:<digit>+", 0.002, 6000),
        ];
        let best = select_min_fpr(&cands, 0.001, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>+:<digit>{2}").unwrap());
    }

    #[test]
    fn coverage_constraint_excludes_rare_patterns() {
        let cands = vec![cand("<digit>{7}", 0.0, 5), cand("<digit>+", 0.001, 900)];
        let best = select_min_fpr(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>+").unwrap());
    }

    #[test]
    fn infeasible_when_all_violate() {
        let cands = vec![cand("<digit>{7}", 0.5, 5000)];
        assert!(select_min_fpr(&cands, 0.1, 100).is_none());
    }

    #[test]
    fn prefers_the_most_specific_feasible_pattern() {
        // Both feasible: the specific one catches more issues; FPR already
        // certifies it as safe. Min-FPR-first would degenerate here.
        let cands = vec![cand("<digit>{4}", 0.001, 200), cand("<digit>+", 0.0, 9000)];
        let best = select_min_fpr(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>{4}").unwrap());
    }

    #[test]
    fn specificity_does_not_override_feasibility() {
        // The specific pattern violates the FPR budget (Lemma 1's pruning);
        // the general one is the only lawful choice.
        let cands = vec![cand("<digit>{4}", 0.4, 200), cand("<digit>+", 0.001, 9000)];
        let best = select_min_fpr(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>+").unwrap());
    }

    #[test]
    fn cmdv_prefers_restrictive_patterns() {
        let cands = vec![cand("<digit>{4}", 0.0, 200), cand("<digit>+", 0.0, 9000)];
        let best = select_min_cov(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>{4}").unwrap());
    }

    /// The streaming selector must agree with the vector pass on every
    /// candidate set, including scalar ties resolved by pattern order.
    #[test]
    fn streaming_select_matches_vector_select() {
        let sets: Vec<Vec<Candidate>> = vec![
            vec![],
            vec![cand("<digit>{7}", 0.5, 5000)],
            vec![
                cand("<digit>{1}:<digit>{2}", 0.67, 5000),
                cand("<digit>+:<digit>{2}", 0.0004, 5000),
                cand("<digit>+:<digit>+", 0.002, 6000),
            ],
            vec![cand("<digit>{4}", 0.001, 200), cand("<digit>+", 0.0, 9000)],
            // Scalar ties: same specificity, fpr, cov — pattern breaks.
            vec![
                cand("<upper>{2}", 0.01, 300),
                cand("<lower>{2}", 0.01, 300),
                cand("<digit>{2}", 0.01, 300),
            ],
            vec![
                cand("<digit>{2}", 0.0, 300),
                cand("<digit>{2}:<digit>{2}", 0.05, 120),
                cand("<letter>+", 0.02, 40),
            ],
        ];
        for cands in &sets {
            for (r, m) in [(0.1, 100), (0.001, 100), (1.0, 0), (0.05, 250)] {
                let vector = select_min_fpr(cands, r, m);
                let mut sel = StreamingSelect::new(SelectObjective::SpecificFirst, r, m);
                for c in cands {
                    sel.offer(c.clone());
                }
                let streamed = sel.into_best();
                assert_eq!(
                    vector.as_ref().map(|c| (&c.pattern, c.fpr, c.cov)),
                    streamed.as_ref().map(|c| (&c.pattern, c.fpr, c.cov)),
                    "r={r} m={m}"
                );
            }
        }
    }

    /// `LowestFpr` reproduces the literal Eq. 5 ordering the vertical DP's
    /// fallback pass used: fpr first, then specificity, then pattern.
    #[test]
    fn streaming_select_lowest_fpr_ordering() {
        let cands = vec![
            cand("<digit>{4}", 0.02, 500),
            cand("<digit>+", 0.001, 900),
            cand("<alnum>+", 0.001, 900),
        ];
        let mut sel = StreamingSelect::new(SelectObjective::LowestFpr, 0.1, 100);
        for c in &cands {
            sel.offer(c.clone());
        }
        // <digit>+ and <alnum>+ tie on fpr; <digit>+ is more specific.
        assert_eq!(sel.into_best().unwrap().pattern, parse("<digit>+").unwrap());
    }
}
