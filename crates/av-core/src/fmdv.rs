//! The basic FMDV optimization (§2.3, Eq. 5–7) and the CMDV ablation.

use crate::config::{FmdvConfig, InferError};
use av_index::PatternIndex;
use av_pattern::{hypothesis_space, Pattern};

/// A hypothesis pattern with its index-provided statistics.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub pattern: Pattern,
    pub fpr: f64,
    pub cov: u64,
}

impl Candidate {
    /// Generality of the pattern (sum of per-token hierarchy depths);
    /// smaller = more specific = more data-quality issues caught.
    pub fn specificity(&self) -> u32 {
        self.pattern.specificity()
    }
}

/// Look up candidates in the offline index. Patterns the index has never
/// seen get coverage 0 (and are therefore infeasible under Eq. 7).
pub(crate) fn lookup_candidates(
    index: &PatternIndex,
    patterns: impl IntoIterator<Item = Pattern>,
) -> Vec<Candidate> {
    patterns
        .into_iter()
        .map(|pattern| match index.lookup(&pattern) {
            Some(stats) => Candidate {
                pattern,
                fpr: stats.fpr,
                cov: stats.cov,
            },
            None => Candidate {
                pattern,
                fpr: 1.0,
                cov: 0,
            },
        })
        .collect()
}

/// FMDV selection (Eq. 5–7): among candidates satisfying `FPR ≤ r` and
/// `Cov ≥ m`, pick the **most specific** pattern, breaking ties toward
/// lower FPR, then higher coverage.
///
/// Rationale: the FPR constraint is what prunes under-generalization —
/// Lemma 1 shows any pattern narrower than the true domain accumulates
/// impurity evidence and violates `FPR ≤ r`. Over-generalization, however,
/// is *not* penalized by FPR at all: a near-trivial pattern matches
/// everything, is never impure, and so has FPR ≈ 0 by construction. Taking
/// the literal minimum over FPR therefore degenerates to the most general
/// survivor; the useful minimizer — and the only reading consistent with
/// the paper's measured recall — is the most specific pattern inside the
/// feasible region, with FPR as the safety constraint.
pub(crate) fn select_min_fpr(candidates: &[Candidate], r: f64, m: u64) -> Option<Candidate> {
    candidates
        .iter()
        .filter(|c| c.fpr <= r && c.cov >= m)
        .min_by(|a, b| {
            a.specificity()
                .cmp(&b.specificity())
                .then_with(|| a.fpr.partial_cmp(&b.fpr).expect("FPRs are finite"))
                .then_with(|| b.cov.cmp(&a.cov))
                .then_with(|| a.pattern.cmp(&b.pattern))
        })
        .cloned()
}

/// Pure FPR minimization among feasible candidates (the literal Eq. 5
/// objective), used by the vertical DP's conservative fallback pass when
/// the specificity-first segmentation exceeds the Eq. 9 budget.
pub(crate) fn select_lowest_fpr(candidates: &[Candidate], r: f64, m: u64) -> Option<Candidate> {
    candidates
        .iter()
        .filter(|c| c.fpr <= r && c.cov >= m)
        .min_by(|a, b| {
            a.fpr
                .partial_cmp(&b.fpr)
                .expect("FPRs are finite")
                .then_with(|| a.specificity().cmp(&b.specificity()))
                .then_with(|| a.pattern.cmp(&b.pattern))
        })
        .cloned()
}

/// CMDV selection (§2.3 alternative): minimize coverage instead. The paper
/// reports this is less effective in practice — kept for the ablation.
pub(crate) fn select_min_cov(candidates: &[Candidate], r: f64, m: u64) -> Option<Candidate> {
    candidates
        .iter()
        .filter(|c| c.fpr <= r && c.cov >= m)
        .min_by(|a, b| {
            a.cov
                .cmp(&b.cov)
                .then_with(|| a.fpr.partial_cmp(&b.fpr).expect("finite"))
                .then_with(|| a.pattern.cmp(&b.pattern))
        })
        .cloned()
}

/// Basic FMDV (§2.3): enumerate `H(C)`, look up pre-computed stats, pick the
/// feasible minimizer. Training values are borrowed end to end.
pub(crate) fn infer_fmdv(
    index: &PatternIndex,
    cfg: &FmdvConfig,
    train: &[&str],
    minimize_coverage: bool,
) -> Result<Candidate, InferError> {
    if train.is_empty() {
        return Err(InferError::EmptyColumn);
    }
    let hypotheses = hypothesis_space(train, &cfg.pattern);
    if hypotheses.is_empty() {
        return Err(InferError::NoHypothesis);
    }
    let candidates = lookup_candidates(index, hypotheses);
    let chosen = if minimize_coverage {
        select_min_cov(&candidates, cfg.r, cfg.m)
    } else {
        select_min_fpr(&candidates, cfg.r, cfg.m)
    };
    chosen.ok_or(InferError::NoFeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::parse;

    fn cand(p: &str, fpr: f64, cov: u64) -> Candidate {
        Candidate {
            pattern: parse(p).unwrap(),
            fpr,
            cov,
        }
    }

    #[test]
    fn min_fpr_respects_constraints() {
        // Example 6 of the paper: h1/h2 infeasible on FPR, h5 feasible.
        let cands = vec![
            cand("<digit>{1}:<digit>{2}", 0.67, 5000), // h2-like
            cand("<digit>+:<digit>{2}", 0.0004, 5000), // h5-like
            cand("<digit>+:<digit>+", 0.002, 6000),
        ];
        let best = select_min_fpr(&cands, 0.001, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>+:<digit>{2}").unwrap());
    }

    #[test]
    fn coverage_constraint_excludes_rare_patterns() {
        let cands = vec![cand("<digit>{7}", 0.0, 5), cand("<digit>+", 0.001, 900)];
        let best = select_min_fpr(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>+").unwrap());
    }

    #[test]
    fn infeasible_when_all_violate() {
        let cands = vec![cand("<digit>{7}", 0.5, 5000)];
        assert!(select_min_fpr(&cands, 0.1, 100).is_none());
    }

    #[test]
    fn prefers_the_most_specific_feasible_pattern() {
        // Both feasible: the specific one catches more issues; FPR already
        // certifies it as safe. Min-FPR-first would degenerate here.
        let cands = vec![cand("<digit>{4}", 0.001, 200), cand("<digit>+", 0.0, 9000)];
        let best = select_min_fpr(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>{4}").unwrap());
    }

    #[test]
    fn specificity_does_not_override_feasibility() {
        // The specific pattern violates the FPR budget (Lemma 1's pruning);
        // the general one is the only lawful choice.
        let cands = vec![cand("<digit>{4}", 0.4, 200), cand("<digit>+", 0.001, 9000)];
        let best = select_min_fpr(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>+").unwrap());
    }

    #[test]
    fn cmdv_prefers_restrictive_patterns() {
        let cands = vec![cand("<digit>{4}", 0.0, 200), cand("<digit>+", 0.0, 9000)];
        let best = select_min_cov(&cands, 0.1, 100).unwrap();
        assert_eq!(best.pattern, parse("<digit>{4}").unwrap());
    }
}
