//! Two-sample homogeneity tests on 2×2 contingency tables (paper §4).
//!
//! FMDV-H models conforming/non-conforming draws in the training column `C`
//! and a future column `C'` as two binomials and asks whether the
//! non-conforming fraction changed significantly. The paper uses Fisher's
//! exact test and Pearson's χ² with Yates correction, reporting "little
//! difference" between them — we implement both.

use crate::gamma::{chi2_sf, ln_factorial};

/// A 2×2 contingency table:
///
/// |           | success | failure |
/// |-----------|---------|---------|
/// | sample 1  |   a     |   b     |
/// | sample 2  |   c     |   d     |
///
/// For FMDV-H: sample 1 = training column `C` (a = conforming,
/// b = non-conforming), sample 2 = tested column `C'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2x2 {
    /// Sample-1 successes.
    pub a: u64,
    /// Sample-1 failures.
    pub b: u64,
    /// Sample-2 successes.
    pub c: u64,
    /// Sample-2 failures.
    pub d: u64,
}

impl Table2x2 {
    /// Build from (successes, total) pairs for both samples.
    ///
    /// # Panics
    /// Panics when successes exceed the total for either sample.
    pub fn from_counts(s1: u64, n1: u64, s2: u64, n2: u64) -> Table2x2 {
        assert!(s1 <= n1 && s2 <= n2, "successes exceed totals");
        Table2x2 {
            a: s1,
            b: n1 - s1,
            c: s2,
            d: n2 - s2,
        }
    }

    /// Total observations.
    pub fn n(&self) -> u64 {
        self.a + self.b + self.c + self.d
    }
}

/// Log of the hypergeometric probability of the table given fixed margins.
fn ln_hypergeom(t: &Table2x2) -> f64 {
    let (a, b, c, d) = (t.a, t.b, t.c, t.d);
    let n = t.n();
    ln_factorial(a + b) + ln_factorial(c + d) + ln_factorial(a + c) + ln_factorial(b + d)
        - ln_factorial(n)
        - ln_factorial(a)
        - ln_factorial(b)
        - ln_factorial(c)
        - ln_factorial(d)
}

/// Two-tailed Fisher's exact test p-value.
///
/// Sums the probabilities of all tables with the same margins whose
/// probability does not exceed that of the observed table (the standard
/// "sum of small p" definition). Exact for any sample size; cost is linear
/// in the smallest margin.
pub fn fisher_exact(t: &Table2x2) -> f64 {
    let row1 = t.a + t.b;
    let col1 = t.a + t.c;
    let n = t.n();
    if n == 0 {
        return 1.0;
    }
    // a ranges over max(0, row1+col1-n) ..= min(row1, col1).
    let lo = row1.saturating_add(col1).saturating_sub(n);
    let hi = row1.min(col1);
    let ln_obs = ln_hypergeom(t);
    // Numerical slack so tables "as extreme" (equal probability) count.
    const EPS: f64 = 1e-7;
    let mut p = 0.0f64;
    for a in lo..=hi {
        let b = row1 - a;
        let c = col1 - a;
        let d = n - row1 - c;
        let cand = Table2x2 { a, b, c, d };
        let ln_p = ln_hypergeom(&cand);
        if ln_p <= ln_obs + EPS {
            p += ln_p.exp();
        }
    }
    p.min(1.0)
}

/// Pearson's χ² test with Yates continuity correction; returns the p-value.
///
/// Returns 1.0 when any margin is zero (the test is undefined; no evidence
/// of heterogeneity either way).
pub fn chi2_yates(t: &Table2x2) -> f64 {
    let (a, b, c, d) = (t.a as f64, t.b as f64, t.c as f64, t.d as f64);
    let n = a + b + c + d;
    let r1 = a + b;
    let r2 = c + d;
    let c1 = a + c;
    let c2 = b + d;
    if r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0 {
        return 1.0;
    }
    let diff = (a * d - b * c).abs();
    let corrected = (diff - n / 2.0).max(0.0);
    let chi2 = n * corrected * corrected / (r1 * r2 * c1 * c2);
    chi2_sf(chi2, 1.0)
}

/// Which homogeneity test to run (paper §4 evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HomogeneityTest {
    /// Fisher's exact test, two-tailed (the paper's default in §5.2).
    #[default]
    FisherExact,
    /// Pearson's χ² with Yates continuity correction.
    ChiSquaredYates,
}

impl HomogeneityTest {
    /// p-value of the chosen test on the table.
    pub fn p_value(&self, t: &Table2x2) -> f64 {
        match self {
            HomogeneityTest::FisherExact => fisher_exact(t),
            HomogeneityTest::ChiSquaredYates => chi2_yates(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fisher_classic_tea_tasting() {
        // Fisher's lady-tasting-tea table: [[3,1],[1,3]], two-tailed p ≈ 0.4857.
        let t = Table2x2 {
            a: 3,
            b: 1,
            c: 1,
            d: 3,
        };
        let p = fisher_exact(&t);
        assert!((p - 0.485714).abs() < 1e-4, "p={p}");
    }

    #[test]
    fn fisher_extreme_table_is_significant() {
        // [[10,0],[0,10]] — maximally heterogeneous.
        let t = Table2x2 {
            a: 10,
            b: 0,
            c: 0,
            d: 10,
        };
        let p = fisher_exact(&t);
        assert!(p < 2e-4, "p={p}");
    }

    #[test]
    fn fisher_identical_samples_not_significant() {
        let t = Table2x2::from_counts(95, 100, 950, 1000);
        let p = fisher_exact(&t);
        assert!(p > 0.5, "p={p}");
    }

    #[test]
    fn paper_scenario_small_shift_not_flagged() {
        // §4: θ_C = 0.1% on 1000 values vs θ_C' = 0.11% on ~1000 — noise.
        let t = Table2x2::from_counts(999, 1000, 998, 1000);
        assert!(fisher_exact(&t) > 0.05);
        assert!(chi2_yates(&t) > 0.05);
    }

    #[test]
    fn paper_scenario_large_shift_flagged() {
        // §4: θ_C = 0.1% vs θ_C' = 5% — strong divergence, reject H0.
        let t = Table2x2::from_counts(999, 1000, 950, 1000);
        assert!(fisher_exact(&t) < 0.01);
        assert!(chi2_yates(&t) < 0.01);
    }

    #[test]
    fn all_nonconforming_is_extreme() {
        // "The special case where no value in C' matches h" (§4).
        let t = Table2x2::from_counts(1000, 1000, 0, 100);
        assert!(fisher_exact(&t) < 1e-10);
        assert!(chi2_yates(&t) < 1e-10);
    }

    #[test]
    fn chi2_and_fisher_roughly_agree() {
        // "In practice we find both to perform well, with little difference" (§4).
        let cases = [
            Table2x2::from_counts(990, 1000, 985, 1000),
            Table2x2::from_counts(990, 1000, 900, 1000),
            Table2x2::from_counts(500, 1000, 480, 1000),
            Table2x2::from_counts(50, 100, 20, 100),
        ];
        for t in cases {
            let pf = fisher_exact(&t);
            let pc = chi2_yates(&t);
            let same_verdict = (pf < 0.01) == (pc < 0.01);
            assert!(same_verdict, "disagree on {t:?}: fisher={pf} chi2={pc}");
        }
    }

    #[test]
    fn degenerate_tables() {
        assert_eq!(
            fisher_exact(&Table2x2 {
                a: 0,
                b: 0,
                c: 0,
                d: 0
            }),
            1.0
        );
        assert_eq!(
            chi2_yates(&Table2x2 {
                a: 5,
                b: 0,
                c: 7,
                d: 0
            }),
            1.0
        );
        // One empty sample: margins still defined, must not panic.
        let t = Table2x2::from_counts(0, 0, 5, 10);
        let _ = fisher_exact(&t);
        let _ = chi2_yates(&t);
    }

    #[test]
    fn p_values_in_unit_interval() {
        for a in [0u64, 1, 5, 50] {
            for b in [0u64, 1, 5, 50] {
                for c in [0u64, 1, 5, 50] {
                    for d in [0u64, 1, 5, 50] {
                        let t = Table2x2 { a, b, c, d };
                        let pf = fisher_exact(&t);
                        let pc = chi2_yates(&t);
                        assert!((0.0..=1.0).contains(&pf), "{t:?} fisher={pf}");
                        assert!((0.0..=1.0).contains(&pc), "{t:?} chi2={pc}");
                    }
                }
            }
        }
    }

    #[test]
    fn test_enum_dispatch() {
        let t = Table2x2::from_counts(999, 1000, 950, 1000);
        assert!(HomogeneityTest::FisherExact.p_value(&t) < 0.01);
        assert!(HomogeneityTest::ChiSquaredYates.p_value(&t) < 0.01);
    }
}
