//! Small descriptive-statistics helpers used across the evaluation harness
//! (means, standard deviations, percentiles — Table 1 reports mean and
//! standard deviation of column sizes).

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// p-th percentile (0 ≤ p ≤ 100) with linear interpolation; 0.0 when empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Harmonic mean of precision and recall; 0.0 when both are 0.
pub fn f1_score(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert!((percentile(&xs, 25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn f1_edge_cases() {
        assert_eq!(f1_score(0.0, 0.0), 0.0);
        assert_eq!(f1_score(1.0, 1.0), 1.0);
        assert!((f1_score(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
