//! # av-stats — statistical tests for Auto-Validate
//!
//! From-scratch implementations of the statistics the paper relies on:
//!
//! * **Two-sample homogeneity tests** (§4): [`fisher_exact`] (two-tailed)
//!   and [`chi2_yates`] (Pearson's χ² with Yates continuity correction) on
//!   2×2 contingency tables, used by FMDV-H to decide whether the fraction
//!   of non-conforming values in a future column differs significantly from
//!   training time.
//! * Supporting special functions: [`ln_gamma`], [`ln_factorial`],
//!   regularized incomplete gamma ([`gamma_p`] / [`gamma_q`]) and the
//!   chi-squared survival function [`chi2_sf`].
//! * Descriptive helpers ([`mean`], [`std_dev`], [`percentile`],
//!   [`f1_score`]) shared by the evaluation harness.

mod contingency;
mod descriptive;
mod gamma;

pub use contingency::{chi2_yates, fisher_exact, HomogeneityTest, Table2x2};
pub use descriptive::{f1_score, mean, percentile, std_dev};
pub use gamma::{chi2_sf, gamma_p, gamma_q, ln_factorial, ln_gamma};
