//! Log-gamma and regularized incomplete gamma functions.
//!
//! Implemented from scratch (Lanczos approximation and standard
//! series/continued-fraction evaluation, cf. Numerical Recipes §6.1–6.2) so
//! the validation tests need no external math dependency.

/// Lanczos coefficients (g = 7, n = 9), double precision.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.5203681218851,
    -1259.1392167224028,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507343278686905,
    -0.13857109526572012,
    9.984_369_578_019_572e-6,
    1.5056327351493116e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~1e-13 relative error over the range used by the tests
/// (factorials up to millions of trials).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` with a small cache for the common range.
pub fn ln_factorial(n: u64) -> f64 {
    const CACHE_SIZE: usize = 256;
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<f64>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        let mut v = Vec::with_capacity(CACHE_SIZE);
        let mut acc = 0.0f64;
        v.push(0.0); // 0! = 1
        for i in 1..CACHE_SIZE {
            acc += (i as f64).ln();
            v.push(acc);
        }
        v
    });
    if (n as usize) < cache.len() {
        cache[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion for P(a, x), converges quickly for x < a+1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x) (modified Lentz), good for x ≥ a+1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-squared distribution with `k` degrees of
/// freedom: `P(X ≥ x)`.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [(f64, f64); 6] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (11.0, 3628800.0),
        ];
        for (x, f) in facts {
            assert!(close(ln_gamma(x), f.ln(), 1e-12), "Γ({x})");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(3/2) = sqrt(pi)/2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn ln_factorial_cache_and_fallback_agree() {
        for n in [0u64, 1, 5, 200, 255, 256, 300, 10_000] {
            let direct = ln_gamma(n as f64 + 1.0);
            assert!(close(ln_factorial(n), direct, 1e-12), "n={n}");
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for a in [0.5, 1.0, 2.5, 10.0, 50.0] {
            for x in [0.1, 1.0, 5.0, 20.0, 100.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!(close(s, 1.0, 1e-10), "a={a} x={x} sum={s}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // For a=1: P(1, x) = 1 - exp(-x).
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12), "x={x}");
        }
    }

    #[test]
    fn chi2_sf_known_values() {
        // Reference values from standard chi-squared tables.
        assert!(close(chi2_sf(3.841, 1.0), 0.05, 2e-3));
        assert!(close(chi2_sf(6.635, 1.0), 0.01, 2e-3));
        assert!(close(chi2_sf(5.991, 2.0), 0.05, 2e-3));
        assert!((chi2_sf(0.0, 1.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn chi2_sf_is_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 1..100 {
            let x = i as f64 * 0.5;
            let v = chi2_sf(x, 1.0);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
