//! Property-based tests for the statistical substrate.

use av_stats::{chi2_sf, chi2_yates, fisher_exact, gamma_p, gamma_q, ln_gamma, Table2x2};
use proptest::prelude::*;

proptest! {
    /// p-values always live in [0, 1].
    #[test]
    fn p_values_in_unit_interval(a in 0u64..300, b in 0u64..300, c in 0u64..300, d in 0u64..300) {
        let t = Table2x2 { a, b, c, d };
        let pf = fisher_exact(&t);
        let pc = chi2_yates(&t);
        prop_assert!((0.0..=1.0).contains(&pf), "fisher {pf}");
        prop_assert!((0.0..=1.0).contains(&pc), "chi2 {pc}");
    }

    /// The tests are symmetric in the two samples.
    #[test]
    fn sample_order_symmetry(a in 0u64..200, b in 0u64..200, c in 0u64..200, d in 0u64..200) {
        let t = Table2x2 { a, b, c, d };
        let swapped = Table2x2 { a: c, b: d, c: a, d: b };
        prop_assert!((fisher_exact(&t) - fisher_exact(&swapped)).abs() < 1e-9);
        prop_assert!((chi2_yates(&t) - chi2_yates(&swapped)).abs() < 1e-9);
    }

    /// Identical proportions are never significant at any usual level.
    #[test]
    fn proportional_tables_are_insignificant(s in 1u64..100, n in 1u64..100, k in 1u64..6) {
        let t = Table2x2::from_counts(s.min(n), n, (s.min(n)) * k, n * k);
        prop_assert!(fisher_exact(&t) > 0.05, "p = {}", fisher_exact(&t));
    }

    /// Fisher and χ²-Yates agree on the verdict for well-populated tables
    /// ("little difference in practice", §4).
    #[test]
    fn tests_agree_on_clear_cases(s1 in 0u64..100, s2 in 0u64..100) {
        let t = Table2x2::from_counts(s1, 100, s2, 100);
        let pf = fisher_exact(&t);
        let pc = chi2_yates(&t);
        // Only check away from the decision boundary.
        if (pf - 0.01).abs() > 0.009 && (pc - 0.01).abs() > 0.009 {
            prop_assert_eq!(pf < 0.01, pc < 0.01, "fisher {} vs chi2 {}", pf, pc);
        }
    }

    /// Γ satisfies the recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn gamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0), "x = {x}");
    }

    /// Regularized incomplete gammas are complementary and monotone in x.
    #[test]
    fn incomplete_gamma_properties(a in 0.2f64..30.0, x in 0.0f64..60.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        let p2 = gamma_p(a, x + 1.0);
        prop_assert!(p2 + 1e-12 >= p, "P must be nondecreasing in x");
    }

    /// χ² survival function is a valid decreasing tail probability.
    #[test]
    fn chi2_sf_properties(x in 0.0f64..50.0, k in 1u8..8) {
        let s = chi2_sf(x, k as f64);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(chi2_sf(x + 0.5, k as f64) <= s + 1e-12);
    }

    /// More extreme tables (same margins) have smaller Fisher p-values.
    #[test]
    fn extremity_monotonicity(n in 4u64..60) {
        // Margins fixed at (n, n) rows and (n, n) columns; a ranges over
        // the diagonal excess.
        let mut prev = 1.0f64;
        for a in (n / 2)..=n {
            let t = Table2x2 { a, b: n - a, c: n - a, d: a };
            let p = fisher_exact(&t);
            prop_assert!(p <= prev + 1e-9, "a={a}: {p} > {prev}");
            prev = p;
        }
    }
}
