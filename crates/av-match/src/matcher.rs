//! [`CatalogMatcher`]: the catalog-wide classifier.
//!
//! Pattern rules live in one NFA union ([`crate::nfa`]); classification
//! runs a **lazily determinized DFA** over it. DFA states are keyed by
//! their sorted NFA state-set and cached; the hot path is one table lookup
//! per input byte. The cache is bounded by
//! [`MatcherConfig::max_dfa_states`]: when a value would need a state
//! beyond the budget, the rest of that value is finished by direct NFA
//! simulation (correct, just slower) and the least-recently-used half of
//! the cache is evicted afterwards so determinization can resume. A
//! pathological catalog therefore degrades to Pike-VM costs instead of
//! exploding memory.
//!
//! Updates are incremental, in the spirit of the dynamic-evaluation
//! literature (Berkholz et al., *FO+MOD queries under updates*): because
//! the union automaton is *anchored* (no self-loop on the start state —
//! values are matched whole, never searched), the global ε-closure of all
//! rule entries appears only in the start state's key. [`CatalogMatcher::insert`]
//! appends an edge-disjoint fragment and merely re-points the start key;
//! every cached DFA state remains valid, because stepping a set that
//! contains no new-fragment states can never reach the new fragment.
//! [`CatalogMatcher::remove`] tombstones the rule's fragment and evicts
//! exactly the cached states whose key intersects its id range. Each
//! update bumps a generation stamp (the `ShardedIndex` epoch pattern) so
//! callers can detect staleness of anything they derived from a classify.

use crate::nfa::{Fragment, Nfa};
use av_pattern::CompiledPattern;
use av_regex::ThreadSet;
use std::collections::{BTreeMap, HashMap};

/// Marks a DFA transition not yet computed.
const UNKNOWN: u32 = u32::MAX;
/// Marks a DFA transition into the empty state-set (no rule can match).
const DEAD: u32 = u32::MAX - 1;

/// Tuning knobs for [`CatalogMatcher`].
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Maximum number of cached DFA states before classification falls
    /// back to NFA simulation and the LRU half of the cache is evicted.
    /// The default (4096) comfortably covers thousands of machine-data
    /// rules; the floor is 1.
    pub max_dfa_states: usize,
}

impl Default for MatcherConfig {
    fn default() -> MatcherConfig {
        MatcherConfig {
            max_dfa_states: 4096,
        }
    }
}

impl MatcherConfig {
    /// Config with an explicit DFA state budget.
    pub fn with_budget(max_dfa_states: usize) -> MatcherConfig {
        MatcherConfig {
            max_dfa_states: max_dfa_states.max(1),
        }
    }
}

/// Counters describing a matcher's current shape and lifetime behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatcherStats {
    /// Total rules (pattern + residual).
    pub rules: usize,
    /// Rules compiled into the NFA union.
    pub pattern_rules: usize,
    /// Rules on the residual check list (dictionary/numeric/opaque).
    pub residual_rules: usize,
    /// NFA arena size, including tombstones awaiting compaction.
    pub nfa_states: usize,
    /// Live cached DFA states.
    pub dfa_states: usize,
    /// Times the LRU half of the DFA cache was evicted.
    pub dfa_evictions: u64,
    /// Values (or value suffixes) classified by NFA simulation because the
    /// DFA budget was exhausted mid-scan.
    pub nfa_fallbacks: u64,
    /// Arena compactions triggered by accumulated tombstones.
    pub compactions: u64,
    /// Update generation: bumped by every insert/remove.
    pub generation: u64,
}

/// A cheap admission test run before a residual rule's full check.
///
/// Conservative by construction: `admits` may return true for
/// non-matching values, never false for matching ones.
#[derive(Debug, Clone, Default)]
pub struct Prefilter {
    min_len: usize,
    max_len: Option<usize>,
    first_bytes: Option<[u64; 4]>,
}

impl Prefilter {
    /// Admits every value (no filtering).
    pub fn any() -> Prefilter {
        Prefilter::default()
    }

    /// Restrict to byte lengths in `min..=max`.
    pub fn len_bounds(mut self, min: usize, max: usize) -> Prefilter {
        self.min_len = min;
        self.max_len = Some(max);
        self
    }

    /// Restrict to values whose first byte is one of `bytes` (non-empty
    /// values only; the length bounds govern the empty value).
    pub fn first_bytes(mut self, bytes: impl IntoIterator<Item = u8>) -> Prefilter {
        let mut set = [0u64; 4];
        for b in bytes {
            set[(b >> 6) as usize] |= 1 << (b & 63);
        }
        self.first_bytes = Some(set);
        self
    }

    #[inline]
    fn admits(&self, value: &str) -> bool {
        let n = value.len();
        if n < self.min_len || self.max_len.is_some_and(|m| n > m) {
            return false;
        }
        match (&self.first_bytes, value.as_bytes().first()) {
            (Some(set), Some(&b)) => set[(b >> 6) as usize] >> (b & 63) & 1 != 0,
            _ => true,
        }
    }
}

/// A non-pattern rule: prefilter plus arbitrary membership check.
struct Residual {
    prefilter: Prefilter,
    check: Box<dyn Fn(&str) -> bool + Send + Sync>,
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("prefilter", &self.prefilter)
            .finish_non_exhaustive()
    }
}

/// One cached (determinized) DFA state.
#[derive(Debug)]
struct DfaState {
    /// Sorted NFA state-set this DFA state denotes — its identity.
    key: Box<[u32]>,
    /// Per-byte successor: a slot id, [`UNKNOWN`], or [`DEAD`].
    trans: Box<[u32; 256]>,
    /// Sorted rule ids accepting in this state.
    accepts: Box<[u32]>,
    /// LRU clock value of the last visit.
    last_used: u64,
}

#[derive(Debug, Default)]
struct DfaCache {
    slots: Vec<Option<DfaState>>,
    free: Vec<u32>,
    by_key: HashMap<Box<[u32]>, u32>,
    /// Monotonic visit clock for LRU.
    tick: u64,
    /// Slot of the start state, or [`UNKNOWN`] when not materialized.
    start: u32,
}

impl DfaCache {
    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.by_key.clear();
        self.start = UNKNOWN;
    }

    #[inline]
    fn state(&self, sid: u32) -> &DfaState {
        self.slots[sid as usize].as_ref().expect("live DFA slot")
    }

    #[inline]
    fn state_mut(&mut self, sid: u32) -> &mut DfaState {
        self.slots[sid as usize].as_mut().expect("live DFA slot")
    }

    fn evict_slot(&mut self, sid: u32) {
        if let Some(state) = self.slots[sid as usize].take() {
            self.by_key.remove(&state.key);
            self.free.push(sid);
            if self.start == sid {
                self.start = UNKNOWN;
            }
        }
    }

    /// Null out transitions into evicted slots (`gone[slot]` true).
    fn sweep_transitions(&mut self, gone: &[bool]) {
        for slot in self.slots.iter_mut().flatten() {
            for t in slot.trans.iter_mut() {
                if *t < gone.len() as u32 && gone[*t as usize] {
                    *t = UNKNOWN;
                }
            }
        }
    }
}

/// A catalog-wide multi-pattern matcher: classify a value against every
/// rule in one scan.
///
/// Pattern rules (compiled `av-pattern` programs) are unioned into one
/// byte-level NFA with rule-tagged accepts and matched through a lazy DFA
/// cache; non-pattern rules (dictionaries, numeric ranges, opaque
/// validators) join through [`CatalogMatcher::insert_residual`] so
/// [`CatalogMatcher::classify`] is total over a heterogeneous catalog.
///
/// ```
/// use av_match::CatalogMatcher;
/// use av_pattern::{parse, CompiledPattern};
///
/// let mut m = CatalogMatcher::new();
/// let date = CompiledPattern::compile(&parse("<digit>{4}-<digit>{2}-<digit>{2}").unwrap());
/// let word = CompiledPattern::compile(&parse("<lower>+").unwrap());
/// m.insert(0, &date);
/// m.insert(1, &word);
/// m.insert_residual(2, av_match::Prefilter::any(), Box::new(|v: &str| v.len() == 5));
///
/// assert_eq!(m.classify("2021-04-13"), vec![0]);
/// assert_eq!(m.classify("hello"), vec![1, 2]);
/// assert_eq!(m.classify("ab"), vec![1]);
/// assert!(m.classify("???").is_empty());
/// ```
#[derive(Debug)]
pub struct CatalogMatcher {
    config: MatcherConfig,
    nfa: Nfa,
    fragments: BTreeMap<u32, Fragment>,
    residuals: BTreeMap<u32, Residual>,
    /// Sorted ε-closure of every live fragment entry — the start state key.
    start_key: Box<[u32]>,
    dfa: DfaCache,
    scratch_a: ThreadSet,
    scratch_b: ThreadSet,
    /// Set when the budget was hit mid-value; triggers eviction between
    /// values (never during a scan, which holds live slot ids).
    pending_evict: bool,
    dead_states: usize,
    generation: u64,
    evictions: u64,
    fallbacks: u64,
    compactions: u64,
}

impl Default for CatalogMatcher {
    fn default() -> CatalogMatcher {
        CatalogMatcher::new()
    }
}

impl CatalogMatcher {
    /// Empty matcher with the default DFA budget.
    pub fn new() -> CatalogMatcher {
        CatalogMatcher::with_config(MatcherConfig::default())
    }

    /// Empty matcher with an explicit config.
    pub fn with_config(config: MatcherConfig) -> CatalogMatcher {
        CatalogMatcher {
            config,
            nfa: Nfa::default(),
            fragments: BTreeMap::new(),
            residuals: BTreeMap::new(),
            start_key: Box::new([]),
            dfa: DfaCache::default(),
            scratch_a: ThreadSet::new(),
            scratch_b: ThreadSet::new(),
            pending_evict: false,
            dead_states: 0,
            generation: 0,
            evictions: 0,
            fallbacks: 0,
            compactions: 0,
        }
    }

    /// Number of rules in the catalog (pattern + residual).
    pub fn len(&self) -> usize {
        self.fragments.len() + self.residuals.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty() && self.residuals.is_empty()
    }

    /// Is `rule_id` present (as either kind)?
    pub fn contains(&self, rule_id: u32) -> bool {
        self.fragments.contains_key(&rule_id) || self.residuals.contains_key(&rule_id)
    }

    /// Update generation: bumped by every insert/remove, mirroring the
    /// sharded index's epoch stamp.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Shape and lifetime counters.
    pub fn stats(&self) -> MatcherStats {
        MatcherStats {
            rules: self.len(),
            pattern_rules: self.fragments.len(),
            residual_rules: self.residuals.len(),
            nfa_states: self.nfa.len(),
            dfa_states: self.dfa.live(),
            dfa_evictions: self.evictions,
            nfa_fallbacks: self.fallbacks,
            compactions: self.compactions,
            generation: self.generation,
        }
    }

    /// Add (or replace) a pattern rule.
    ///
    /// Appends an edge-disjoint NFA fragment and recomputes the start
    /// key. No cached DFA state is invalidated: the anchored automaton
    /// reaches the new fragment only through the (re-pointed) start key,
    /// and stepping any previously cached state-set cannot produce
    /// new-fragment states.
    pub fn insert(&mut self, rule_id: u32, program: &CompiledPattern) {
        if self.contains(rule_id) {
            self.remove(rule_id);
            self.generation -= 1; // net one bump per insert
        }
        let frag = self.nfa.build_fragment(rule_id, program);
        self.fragments.insert(rule_id, frag);
        self.rebuild_start();
        self.generation += 1;
    }

    /// Add (or replace) a non-pattern rule: `check` decides membership,
    /// gated by `prefilter` on the hot path.
    pub fn insert_residual(
        &mut self,
        rule_id: u32,
        prefilter: Prefilter,
        check: Box<dyn Fn(&str) -> bool + Send + Sync>,
    ) {
        if self.fragments.contains_key(&rule_id) {
            self.remove(rule_id);
            self.generation -= 1;
        }
        self.residuals
            .insert(rule_id, Residual { prefilter, check });
        self.generation += 1;
    }

    /// Remove a rule; returns whether it was present.
    ///
    /// For pattern rules the fragment is tombstoned and exactly the
    /// cached DFA states whose key intersects its id range are evicted —
    /// every other cached state (and its computed transitions) stays.
    pub fn remove(&mut self, rule_id: u32) -> bool {
        if self.residuals.remove(&rule_id).is_some() {
            self.generation += 1;
            return true;
        }
        let Some(frag) = self.fragments.remove(&rule_id) else {
            return false;
        };
        self.nfa.kill_range(&frag.range);
        self.dead_states += (frag.range.end - frag.range.start) as usize;

        // Evict cached states denoting sets that touched the dead range.
        let mut gone = vec![false; self.dfa.slots.len()];
        let stale: Vec<u32> = (0..self.dfa.slots.len() as u32)
            .filter(|&sid| {
                self.dfa.slots[sid as usize]
                    .as_ref()
                    .is_some_and(|s| key_intersects(&s.key, &frag.range))
            })
            .collect();
        for sid in stale {
            gone[sid as usize] = true;
            self.dfa.evict_slot(sid);
        }
        self.dfa.sweep_transitions(&gone);

        if self.dead_states > self.nfa.len() / 2 {
            self.compact();
        }
        self.rebuild_start();
        self.generation += 1;
        true
    }

    /// Full matching rule-id set for `value`, sorted ascending.
    pub fn classify(&mut self, value: &str) -> Vec<u32> {
        let mut out = Vec::new();
        self.classify_into(value, &mut out);
        out
    }

    /// [`CatalogMatcher::classify`] into a caller-owned buffer; the
    /// steady-state scan allocates only when new DFA states materialize.
    pub fn classify_into(&mut self, value: &str, out: &mut Vec<u32>) {
        out.clear();
        if !self.fragments.is_empty() {
            self.scan(value, out);
        }
        for (&rid, res) in &self.residuals {
            if res.prefilter.admits(value) && (res.check)(value) {
                out.push(rid);
            }
        }
        out.sort_unstable();
        if self.pending_evict {
            self.evict_lru_half();
        }
    }

    /// DFA scan over the pattern union; pushes accepted rule ids.
    fn scan(&mut self, value: &str, out: &mut Vec<u32>) {
        let bytes = value.as_bytes();
        let Some(mut sid) = self.ensure_start() else {
            let seed: Vec<u32> = self.start_key.to_vec();
            self.nfa_finish(bytes, &seed, out);
            return;
        };
        for (i, &b) in bytes.iter().enumerate() {
            let next = self.dfa.state(sid).trans[b as usize];
            let next = if next == UNKNOWN {
                match self.extend(sid, b) {
                    Some(n) => n,
                    None => {
                        // Budget exhausted: finish this value on the NFA.
                        let seed: Vec<u32> = self.dfa.state(sid).key.to_vec();
                        self.nfa_finish(&bytes[i..], &seed, out);
                        return;
                    }
                }
            } else {
                next
            };
            if next == DEAD {
                return;
            }
            sid = next;
            self.dfa.tick += 1;
            let tick = self.dfa.tick;
            self.dfa.state_mut(sid).last_used = tick;
        }
        out.extend_from_slice(&self.dfa.state(sid).accepts);
    }

    /// Materialize the start state; `None` when even that exceeds budget.
    fn ensure_start(&mut self) -> Option<u32> {
        if self.dfa.start != UNKNOWN {
            return Some(self.dfa.start);
        }
        let key = self.start_key.clone();
        let sid = self.intern_state(key)?;
        self.dfa.start = sid;
        Some(sid)
    }

    /// Compute and cache the transition `sid --b-->`; `None` when a new
    /// state is needed but the budget is exhausted.
    fn extend(&mut self, sid: u32, b: u8) -> Option<u32> {
        let CatalogMatcher {
            nfa,
            dfa,
            scratch_a,
            ..
        } = self;
        scratch_a.clear_resize(nfa.len());
        nfa.step(&dfa.state(sid).key, b, scratch_a);
        let next = if scratch_a.is_empty() {
            DEAD
        } else {
            let mut key: Vec<u32> = scratch_a.as_slice().to_vec();
            key.sort_unstable();
            self.intern_state(key.into_boxed_slice())?
        };
        self.dfa.state_mut(sid).trans[b as usize] = next;
        Some(next)
    }

    /// Look up or create the DFA state for `key`; `None` (and a pending
    /// eviction) when creation would exceed the budget.
    fn intern_state(&mut self, key: Box<[u32]>) -> Option<u32> {
        if let Some(&sid) = self.dfa.by_key.get(&key) {
            return Some(sid);
        }
        if self.dfa.live() >= self.config.max_dfa_states {
            self.pending_evict = true;
            return None;
        }
        let mut accepts = Vec::new();
        self.nfa.accepts_of(&key, &mut accepts);
        accepts.sort_unstable();
        self.dfa.tick += 1;
        let state = DfaState {
            key: key.clone(),
            trans: Box::new([UNKNOWN; 256]),
            accepts: accepts.into_boxed_slice(),
            last_used: self.dfa.tick,
        };
        let sid = match self.dfa.free.pop() {
            Some(sid) => {
                self.dfa.slots[sid as usize] = Some(state);
                sid
            }
            None => {
                self.dfa.slots.push(Some(state));
                (self.dfa.slots.len() - 1) as u32
            }
        };
        self.dfa.by_key.insert(key, sid);
        Some(sid)
    }

    /// Finish (or fully run) one value by NFA simulation from `seed` —
    /// the graceful degradation path when the DFA budget is exhausted.
    fn nfa_finish(&mut self, bytes: &[u8], seed: &[u32], out: &mut Vec<u32>) {
        self.fallbacks += 1;
        let CatalogMatcher {
            nfa,
            scratch_a,
            scratch_b,
            ..
        } = self;
        scratch_a.clear_resize(nfa.len());
        scratch_b.clear_resize(nfa.len());
        for &sid in seed {
            nfa.add_closure(sid, scratch_a);
        }
        for &b in bytes {
            if scratch_a.is_empty() {
                return;
            }
            scratch_b.reset();
            nfa.step(scratch_a.as_slice(), b, scratch_b);
            std::mem::swap(scratch_a, scratch_b);
        }
        nfa.accepts_of(scratch_a.as_slice(), out);
    }

    /// Drop the least-recently-used half of the cache (keeping at least
    /// the most recent state), then null dangling transitions.
    fn evict_lru_half(&mut self) {
        self.pending_evict = false;
        self.evictions += 1;
        let mut live: Vec<(u64, u32)> = self
            .dfa
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (s.last_used, i as u32)))
            .collect();
        if live.len() < 2 {
            return;
        }
        live.sort_unstable();
        let evict_count = live.len() / 2;
        let mut gone = vec![false; self.dfa.slots.len()];
        for &(_, sid) in &live[..evict_count] {
            gone[sid as usize] = true;
            self.dfa.evict_slot(sid);
        }
        self.dfa.sweep_transitions(&gone);
    }

    /// Recompute the start key (the ε-closure of every live fragment
    /// entry) and re-point the start state.
    fn rebuild_start(&mut self) {
        let CatalogMatcher {
            nfa,
            fragments,
            scratch_a,
            ..
        } = self;
        scratch_a.clear_resize(nfa.len());
        for frag in fragments.values() {
            nfa.add_closure(frag.entry, scratch_a);
        }
        let mut key: Vec<u32> = scratch_a.as_slice().to_vec();
        key.sort_unstable();
        self.start_key = key.into_boxed_slice();
        self.dfa.start = UNKNOWN;
    }

    /// Squeeze tombstones out of the arena. Every state id changes, so
    /// the DFA cache is flushed wholesale — this is the one non-surgical
    /// invalidation, amortized by the tombstone threshold.
    fn compact(&mut self) {
        let remapped = self
            .nfa
            .compact(self.fragments.iter().map(|(&r, f)| (r, f)));
        self.fragments = remapped.into_iter().collect();
        self.dfa.clear();
        self.dead_states = 0;
        self.compactions += 1;
    }
}

/// Does the sorted `key` contain any id in `range`?
fn key_intersects(key: &[u32], range: &std::ops::Range<u32>) -> bool {
    let i = key.partition_point(|&id| id < range.start);
    key.get(i).is_some_and(|&id| id < range.end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_pattern::parse;

    fn compiled(p: &str) -> CompiledPattern {
        CompiledPattern::compile(&parse(p).unwrap())
    }

    #[test]
    fn classifies_against_every_rule_in_one_pass() {
        let mut m = CatalogMatcher::new();
        m.insert(3, &compiled("<digit>{4}-<digit>{2}-<digit>{2}"));
        m.insert(7, &compiled("<digit>+-<digit>+-<digit>+"));
        m.insert(9, &compiled("<lower>+"));
        assert_eq!(m.classify("2021-04-13"), vec![3, 7]);
        assert_eq!(m.classify("1-2-3"), vec![7]);
        assert_eq!(m.classify("hello"), vec![9]);
        assert!(m.classify("HELLO").is_empty());
        assert!(m.classify("").is_empty());
    }

    #[test]
    fn empty_pattern_accepts_empty_value() {
        let mut m = CatalogMatcher::new();
        m.insert(1, &CompiledPattern::compile(&av_pattern::Pattern::empty()));
        assert_eq!(m.classify(""), vec![1]);
        assert!(m.classify("x").is_empty());
    }

    #[test]
    fn unicode_values_step_by_encoded_length() {
        let mut m = CatalogMatcher::new();
        m.insert(0, &compiled("<sym>{2}"));
        m.insert(1, &compiled("<any>+"));
        assert_eq!(m.classify("héllo"), vec![1]);
        assert_eq!(m.classify("é€"), vec![0, 1]);
        assert_eq!(m.classify("😀!"), vec![0, 1]);
        assert!(m.classify("").is_empty());
    }

    #[test]
    fn residuals_participate_via_prefilter_and_check() {
        let mut m = CatalogMatcher::new();
        m.insert(0, &compiled("<digit>+"));
        m.insert_residual(
            5,
            Prefilter::any().len_bounds(3, 3).first_bytes([b'c', b'd']),
            Box::new(|v: &str| v == "cat" || v == "dog"),
        );
        assert_eq!(m.classify("cat"), vec![5]);
        assert_eq!(m.classify("dog"), vec![5]);
        assert!(m.classify("cow").is_empty());
        assert!(m.classify("ant").is_empty(), "prefilter rejects first byte");
        assert_eq!(m.classify("42"), vec![0]);
    }

    #[test]
    fn replace_and_remove_update_verdicts() {
        let mut m = CatalogMatcher::new();
        m.insert(1, &compiled("<digit>{2}"));
        assert_eq!(m.classify("42"), vec![1]);
        let g1 = m.generation();
        m.insert(1, &compiled("<upper>{2}"));
        assert!(m.classify("42").is_empty());
        assert_eq!(m.classify("AB"), vec![1]);
        assert_eq!(m.generation(), g1 + 1, "replace is one generation bump");
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert!(m.classify("AB").is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn insert_preserves_cached_dfa_states() {
        let mut m = CatalogMatcher::new();
        m.insert(0, &compiled("<digit>{2}:<digit>{2}"));
        // Warm the cache, then insert a disjoint rule.
        assert_eq!(m.classify("12:34"), vec![0]);
        let warm = m.stats().dfa_states;
        assert!(warm > 0);
        m.insert(1, &compiled("<lower>+"));
        // Old cached states survive the insert (only the start key moved).
        assert_eq!(m.stats().dfa_states, warm);
        assert_eq!(m.classify("12:34"), vec![0]);
        assert_eq!(m.classify("abc"), vec![1]);
    }

    #[test]
    fn budget_exhaustion_falls_back_to_nfa_and_recovers() {
        let mut m = CatalogMatcher::with_config(MatcherConfig::with_budget(2));
        m.insert(0, &compiled("<digit>{2}-<upper>{3}"));
        m.insert(1, &compiled("<digit>+"));
        let values = ["12-ABC", "99", "12-ABX", "7", "12-", "nope", "00-ZZZ"];
        let p0 = compiled("<digit>{2}-<upper>{3}");
        let p1 = compiled("<digit>+");
        for v in values {
            let got = m.classify(v);
            let mut want = Vec::new();
            if p0.matches(v) {
                want.push(0);
            }
            if p1.matches(v) {
                want.push(1);
            }
            assert_eq!(got, want, "value {v:?}");
        }
        let stats = m.stats();
        assert!(stats.nfa_fallbacks > 0, "tiny budget must trigger fallback");
        assert!(stats.dfa_evictions > 0, "and LRU eviction between values");
        assert!(stats.dfa_states <= 2, "budget stays bounded: {stats:?}");
    }

    #[test]
    fn remove_triggers_compaction_after_enough_tombstones() {
        let mut m = CatalogMatcher::new();
        for i in 0..10u32 {
            m.insert(i, &compiled("<digit>{3}"));
        }
        for i in 0..9u32 {
            m.remove(i);
        }
        let stats = m.stats();
        assert!(stats.compactions > 0, "{stats:?}");
        assert_eq!(m.classify("123"), vec![9]);
        assert!(m.classify("12").is_empty());
    }

    #[test]
    fn num_instruction_matches_decimal_shapes() {
        let mut m = CatalogMatcher::new();
        m.insert(0, &compiled("<num>"));
        for (v, want) in [
            ("9", true),
            ("0.1", true),
            ("12345.6789", true),
            (".5", false),
            ("5.", false),
            ("1.2.3", false),
            ("", false),
        ] {
            assert_eq!(!m.classify(v).is_empty(), want, "{v:?}");
        }
    }
}
