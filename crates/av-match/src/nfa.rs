//! The byte-level NFA union underlying [`crate::CatalogMatcher`].
//!
//! Every pattern rule's fused instruction program
//! ([`av_pattern::CompiledPattern`]) is translated into a contiguous
//! *fragment* of NFA states ending in an [`NState::Accept`] tagged with the
//! rule id. Fragments are self-contained — every edge stays inside its
//! fragment — which is what makes incremental maintenance cheap:
//!
//! * **insert** appends a fragment; existing states never gain edges into
//!   it, so previously determinized DFA states stay valid as-is;
//! * **remove** tombstones one fragment's range; only DFA states whose
//!   state-set intersects that range can be stale.
//!
//! The translation mirrors the byte-level semantics of the compiled
//! matcher exactly (ASCII classes test single bytes; `<sym>`/`<any>` step
//! over multi-byte characters lead-byte-first), so on any valid UTF-8
//! input the union accepts precisely the rules whose `CompiledPattern`
//! accepts the value — the equivalence the oracle proptest pins down.

use av_pattern::{ClassView, CompiledPattern, InstView};
use av_regex::ThreadSet;
use std::collections::HashMap;
use std::ops::Range;

/// A 256-bit byte membership set.
pub(crate) type ByteSet = [u64; 4];

#[inline]
fn set_contains(set: &ByteSet, b: u8) -> bool {
    set[(b >> 6) as usize] >> (b & 63) & 1 != 0
}

#[inline]
fn set_insert(set: &mut ByteSet, b: u8) {
    set[(b >> 6) as usize] |= 1 << (b & 63);
}

fn range_set(lo: u8, hi: u8) -> ByteSet {
    let mut s = [0u64; 4];
    for b in lo..=hi {
        set_insert(&mut s, b);
    }
    s
}

/// Interner for byte sets: states store a `u16` id, membership tests index
/// one shared table. Catalogs reuse a handful of class alphabets plus the
/// distinct literal bytes, so the table stays tiny no matter the rule count.
#[derive(Debug, Default, Clone)]
struct ByteSets {
    sets: Vec<ByteSet>,
    ids: HashMap<ByteSet, u16>,
}

impl ByteSets {
    fn intern(&mut self, set: ByteSet) -> u16 {
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = u16::try_from(self.sets.len()).expect("byte-set interner overflow");
        self.sets.push(set);
        self.ids.insert(set, id);
        id
    }

    #[inline]
    fn contains(&self, id: u16, b: u8) -> bool {
        set_contains(&self.sets[id as usize], b)
    }
}

/// One NFA state. `u32` targets keep the arena compact; all targets point
/// inside the state's own fragment.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NState {
    /// Consume one byte in the interned set, go to `next`.
    Byte { set: u16, next: u32 },
    /// ε-split to both targets.
    Split { a: u32, b: u32 },
    /// The whole value matched rule `rule`.
    Accept { rule: u32 },
    /// Tombstone left by a removed fragment (never reachable from live
    /// fragments; swept out by compaction).
    Dead,
}

/// A rule's contiguous slice of the arena plus its entry state.
#[derive(Debug, Clone)]
pub(crate) struct Fragment {
    pub entry: u32,
    pub range: Range<u32>,
}

/// The NFA arena shared by every rule fragment.
#[derive(Debug, Default, Clone)]
pub(crate) struct Nfa {
    states: Vec<NState>,
    sets: ByteSets,
}

impl Nfa {
    /// Total arena size (live + tombstoned states).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    fn push(&mut self, state: NState) -> u32 {
        let id = u32::try_from(self.states.len()).expect("NFA arena overflow");
        self.states.push(state);
        id
    }

    /// The ASCII alphabet of a class as a byte set.
    fn class_set(class: ClassView) -> ByteSet {
        let mut s = [0u64; 4];
        for b in 0u8..0x80 {
            if class.contains_ascii(b) {
                set_insert(&mut s, b);
            }
        }
        s
    }

    /// One character of `class` then `next`. ASCII classes are a single
    /// byte state; `<sym>`/`<any>` add the three multi-byte spine paths
    /// (lead byte then 1–3 continuation bytes), matching how the compiled
    /// matcher steps by encoded length — equivalent on valid UTF-8.
    fn push_char(&mut self, class: ClassView, next: u32) -> u32 {
        let ascii = self.sets.intern(Self::class_set(class));
        let a = self.push(NState::Byte { set: ascii, next });
        if !class.accepts_multibyte() {
            return a;
        }
        let cont = self.sets.intern(range_set(0x80, 0xBF));
        let lead2 = self.sets.intern(range_set(0xC0, 0xDF));
        let lead3 = self.sets.intern(range_set(0xE0, 0xEF));
        let lead4 = self.sets.intern(range_set(0xF0, 0xFF));
        let c1 = self.push(NState::Byte { set: cont, next });
        let c2 = self.push(NState::Byte {
            set: cont,
            next: c1,
        });
        let c3 = self.push(NState::Byte {
            set: cont,
            next: c2,
        });
        let l2 = self.push(NState::Byte {
            set: lead2,
            next: c1,
        });
        let l3 = self.push(NState::Byte {
            set: lead3,
            next: c2,
        });
        let l4 = self.push(NState::Byte {
            set: lead4,
            next: c3,
        });
        let s34 = self.push(NState::Split { a: l3, b: l4 });
        let s234 = self.push(NState::Split { a: l2, b: s34 });
        self.push(NState::Split { a, b: s234 })
    }

    /// The literal's bytes in sequence, then `next`.
    fn push_lit(&mut self, bytes: &[u8], mut next: u32) -> u32 {
        for &b in bytes.iter().rev() {
            let mut s = [0u64; 4];
            set_insert(&mut s, b);
            let set = self.sets.intern(s);
            next = self.push(NState::Byte { set, next });
        }
        next
    }

    /// `min_chars` or more characters of `class`, then `next`.
    fn push_var(&mut self, class: ClassView, min_chars: u32, next: u32) -> u32 {
        // Loop head: either consume another char (back to the head) or exit.
        let head = self.push(NState::Split { a: 0, b: next }); // `a` patched below
        let body = self.push_char(class, head);
        if let NState::Split { a, .. } = &mut self.states[head as usize] {
            *a = body;
        }
        let mut entry = head;
        for _ in 0..min_chars {
            entry = self.push_char(class, entry);
        }
        entry
    }

    /// `\d+` then `next`.
    fn push_digits_plus(&mut self, next: u32) -> u32 {
        let digit = self.sets.intern(Self::class_set(ClassView::Digit));
        let head = self.push(NState::Split { a: 0, b: next }); // `a` patched below
        let body = self.push(NState::Byte {
            set: digit,
            next: head,
        });
        if let NState::Split { a, .. } = &mut self.states[head as usize] {
            *a = body;
        }
        self.push(NState::Byte {
            set: digit,
            next: head,
        })
    }

    /// `<num>` = `\d+(\.\d+)?`, then `next`.
    fn push_num(&mut self, next: u32) -> u32 {
        let frac = self.push_digits_plus(next);
        let mut dot_set = [0u64; 4];
        set_insert(&mut dot_set, b'.');
        let dot_set = self.sets.intern(dot_set);
        let dot = self.push(NState::Byte {
            set: dot_set,
            next: frac,
        });
        let after_int = self.push(NState::Split { a: dot, b: next });
        self.push_digits_plus(after_int)
    }

    /// Append a fragment translating `program`, accepting as `rule`.
    pub fn build_fragment(&mut self, rule: u32, program: &CompiledPattern) -> Fragment {
        let start = self.states.len() as u32;
        let accept = self.push(NState::Accept { rule });
        let mut next = accept;
        let insts: Vec<InstView<'_>> = program.instructions().collect();
        for inst in insts.iter().rev() {
            next = match *inst {
                InstView::Lit(bytes) => self.push_lit(bytes, next),
                InstView::Fixed { class, chars } => {
                    let mut n = next;
                    for _ in 0..chars {
                        n = self.push_char(class, n);
                    }
                    n
                }
                InstView::Var { class, min_chars } => self.push_var(class, min_chars, next),
                InstView::Num => self.push_num(next),
            };
        }
        Fragment {
            entry: next,
            range: start..self.states.len() as u32,
        }
    }

    /// Tombstone a removed fragment's range.
    pub fn kill_range(&mut self, range: &Range<u32>) {
        for s in &mut self.states[range.start as usize..range.end as usize] {
            *s = NState::Dead;
        }
    }

    /// ε-closure insertion: mark everything visited, list only states that
    /// consume input or accept (the [`ThreadSet`] contract). Recursion
    /// depth is bounded by the ε-chain length between consuming states,
    /// which the fragment builders keep to a small constant per
    /// instruction (every instruction consumes at least one byte).
    pub fn add_closure(&self, sid: u32, set: &mut ThreadSet) {
        if !set.mark(sid) {
            return;
        }
        match self.states[sid as usize] {
            NState::Split { a, b } => {
                self.add_closure(a, set);
                self.add_closure(b, set);
            }
            NState::Byte { .. } | NState::Accept { .. } => set.push(sid),
            NState::Dead => {}
        }
    }

    /// Advance every state in `current` over byte `b` into `next` (one
    /// subset-construction / NFA-simulation step).
    pub fn step(&self, current: &[u32], b: u8, next: &mut ThreadSet) {
        for &sid in current {
            if let NState::Byte { set, next: target } = self.states[sid as usize] {
                if self.sets.contains(set, b) {
                    self.add_closure(target, next);
                }
            }
        }
    }

    /// Collect the rule ids of every accept state in `key` into `out`.
    pub fn accepts_of(&self, key: &[u32], out: &mut Vec<u32>) {
        for &sid in key {
            if let NState::Accept { rule } = self.states[sid as usize] {
                out.push(rule);
            }
        }
    }

    /// Rebuild the arena with only the given fragments, in iteration
    /// order, shifting each fragment's internal pointers by its new
    /// offset. Returns the remapped fragments. Callers must flush any
    /// state-set keyed caches afterwards — every state id changes.
    pub fn compact<'f>(
        &mut self,
        fragments: impl Iterator<Item = (u32, &'f Fragment)>,
    ) -> Vec<(u32, Fragment)> {
        let mut states = Vec::new();
        let mut remapped = Vec::new();
        for (rule, frag) in fragments {
            let new_start = states.len() as u32;
            let delta = new_start as i64 - frag.range.start as i64;
            let shift = |id: u32| (id as i64 + delta) as u32;
            for s in &self.states[frag.range.start as usize..frag.range.end as usize] {
                states.push(match *s {
                    NState::Byte { set, next } => NState::Byte {
                        set,
                        next: shift(next),
                    },
                    NState::Split { a, b } => NState::Split {
                        a: shift(a),
                        b: shift(b),
                    },
                    NState::Accept { rule } => NState::Accept { rule },
                    NState::Dead => unreachable!("live fragments hold no tombstones"),
                });
            }
            remapped.push((
                rule,
                Fragment {
                    entry: shift(frag.entry),
                    range: new_start..states.len() as u32,
                },
            ));
        }
        self.states = states;
        remapped
    }
}
