//! # av-match — catalog-wide multi-pattern classification
//!
//! The service validates one value against one rule in nanoseconds, but
//! the data-routing workloads the paper's production deployment describes
//! — tagging, `compare`, nearest-rule explanation — ask the opposite
//! question: *which of all N catalog rules match this value?* Running N
//! compiled programs per value makes that O(catalog). This crate answers
//! it in **one scan of the value**, independent of catalog size:
//!
//! 1. every pattern rule's fused instruction program
//!    ([`av_pattern::CompiledPattern::instructions`]) is translated into a
//!    fragment of one shared **byte-level NFA union**, its accept state
//!    tagged with the rule id;
//! 2. classification runs a **lazily determinized DFA** over the union —
//!    each cached DFA state is a set of NFA states, transitions
//!    materialize on first use, and the hot path is one table lookup per
//!    input byte;
//! 3. the DFA cache is **bounded** ([`MatcherConfig::max_dfa_states`]):
//!    past the budget, the current value finishes on direct NFA
//!    simulation (Pike-VM thread lists from `av-regex`) and the
//!    least-recently-used half of the cache is evicted, so pathological
//!    catalogs degrade gracefully instead of exploding memory;
//! 4. rules that are not patterns — dictionaries, numeric ranges, opaque
//!    baseline validators — participate as **residuals**: a cheap
//!    [`Prefilter`] (length bounds, first-byte set) gates an arbitrary
//!    membership check, keeping [`CatalogMatcher::classify`] total over a
//!    heterogeneous catalog.
//!
//! Maintenance is **incremental** (after Berkholz et al., *FO+MOD queries
//! under updates*): the automaton is anchored, so the only DFA state that
//! sees the global start closure is the start state itself.
//! [`CatalogMatcher::insert`] appends an edge-disjoint fragment and
//! re-points the start key — every cached DFA state stays valid.
//! [`CatalogMatcher::remove`] tombstones one fragment and evicts exactly
//! the cached states whose key intersects it. Each update bumps a
//! generation stamp, mirroring the sharded index's epoch pattern.
//!
//! ```
//! use av_match::CatalogMatcher;
//! use av_pattern::{parse, CompiledPattern};
//!
//! let mut matcher = CatalogMatcher::new();
//! let rules = [
//!     "<digit>{4}-<digit>{2}-<digit>{2}", // 0: ISO date
//!     "<digit>+-<digit>+-<digit>+",       // 1: dashed number triple
//!     "<upper>{3}",                       // 2: currency-ish code
//! ];
//! for (id, rule) in rules.iter().enumerate() {
//!     matcher.insert(id as u32, &CompiledPattern::compile(&parse(rule).unwrap()));
//! }
//!
//! // One scan returns every matching rule id.
//! assert_eq!(matcher.classify("2021-04-13"), vec![0, 1]);
//! assert_eq!(matcher.classify("USD"), vec![2]);
//!
//! // Updates are incremental: remove evicts only affected DFA states.
//! matcher.remove(1);
//! assert_eq!(matcher.classify("2021-04-13"), vec![0]);
//! ```

mod matcher;
mod nfa;

pub use matcher::{CatalogMatcher, MatcherConfig, MatcherStats, Prefilter};
