//! Property tests pinning [`CatalogMatcher`] to its oracle: running each
//! rule's [`CompiledPattern`] individually. On arbitrary catalogs ×
//! arbitrary values (including multi-byte unicode) the one-scan match-set
//! must equal the N-programs loop, under any DFA budget, and after any
//! sequence of incremental inserts/removes.

use av_match::{CatalogMatcher, MatcherConfig};
use av_pattern::{CompiledPattern, Pattern, Token};
use proptest::prelude::*;

fn arbitrary_token() -> impl Strategy<Value = Token> {
    prop_oneof![
        proptest::string::string_regex("[A-Za-z0-9:/. -]{1,4}")
            .expect("valid")
            .prop_map(Token::lit),
        (1u16..4).prop_map(Token::Digit),
        Just(Token::DigitPlus),
        Just(Token::Num),
        (1u16..4).prop_map(Token::Upper),
        Just(Token::UpperPlus),
        (1u16..4).prop_map(Token::Lower),
        Just(Token::LowerPlus),
        (1u16..4).prop_map(Token::Letter),
        Just(Token::LetterPlus),
        (1u16..4).prop_map(Token::Alnum),
        Just(Token::AlnumPlus),
        (1u16..3).prop_map(Token::Sym),
        Just(Token::SymPlus),
        Just(Token::SpacePlus),
        Just(Token::AnyPlus),
    ]
}

fn arbitrary_program() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(arbitrary_token(), 0..6)
        .prop_map(|tokens| CompiledPattern::compile(&Pattern::new(tokens)))
}

/// ASCII machine data plus multi-byte characters (é, €, emoji) so the
/// lead/continuation spine of `<sym>`/`<any>` gets exercised.
fn probe_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 :/.,_é€😀-]{0,16}").expect("valid regex")
}

fn oracle_set(programs: &[CompiledPattern], value: &str) -> Vec<u32> {
    programs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.matches(value))
        .map(|(i, _)| i as u32)
        .collect()
}

proptest! {
    /// The tentpole equivalence: one scan ≡ the N-programs loop.
    #[test]
    fn match_set_equals_per_rule_loop(
        programs in proptest::collection::vec(arbitrary_program(), 0..12),
        values in proptest::collection::vec(probe_value(), 1..8),
    ) {
        let mut matcher = CatalogMatcher::new();
        for (i, p) in programs.iter().enumerate() {
            matcher.insert(i as u32, p);
        }
        for v in &values {
            prop_assert_eq!(
                matcher.classify(v),
                oracle_set(&programs, v),
                "catalog of {} rules disagrees with per-rule loop on {:?}",
                programs.len(),
                v
            );
        }
    }

    /// Budget exhaustion must never change verdicts: with a DFA budget of
    /// 1 every value takes the NFA-fallback + eviction path, and the
    /// match-sets still equal the oracle.
    #[test]
    fn starved_dfa_budget_is_still_exact(
        programs in proptest::collection::vec(arbitrary_program(), 1..8),
        values in proptest::collection::vec(probe_value(), 1..6),
    ) {
        let mut matcher = CatalogMatcher::with_config(MatcherConfig::with_budget(1));
        for (i, p) in programs.iter().enumerate() {
            matcher.insert(i as u32, p);
        }
        for v in &values {
            prop_assert_eq!(matcher.classify(v), oracle_set(&programs, v), "on {:?}", v);
        }
        prop_assert!(matcher.stats().dfa_states <= 1, "budget respected");
    }

    /// Incremental maintenance: interleave inserts, removes, replacements
    /// and classifies; after every step the warm (incrementally updated)
    /// matcher agrees with one freshly built from the surviving rules.
    #[test]
    fn incremental_updates_equal_fresh_build(
        programs in proptest::collection::vec(arbitrary_program(), 2..8),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        value in probe_value(),
    ) {
        let mut warm = CatalogMatcher::new();
        let n = programs.len() as u8;
        let mut live: Vec<Option<usize>> = vec![None; programs.len()];
        for (sel, action) in ops {
            let slot = (sel % n) as usize;
            if action % 3 == 0 && live[slot].is_some() {
                warm.remove(slot as u32);
                live[slot] = None;
            } else {
                let pick = (action as usize) % programs.len();
                warm.insert(slot as u32, &programs[pick]);
                live[slot] = Some(pick);
            }
            // Classify mid-sequence so stale cached DFA states would be caught.
            let warm_set = warm.classify(&value);
            let mut fresh = CatalogMatcher::new();
            for (slot, pick) in live.iter().enumerate() {
                if let Some(pick) = pick {
                    fresh.insert(slot as u32, &programs[*pick]);
                }
            }
            prop_assert_eq!(
                warm_set,
                fresh.classify(&value),
                "incremental matcher diverged from fresh build on {:?}",
                &value
            );
        }
    }
}
