//! Fingerprint-sharded index storage and the concurrent RCU wrapper.
//!
//! The index is partitioned into a power-of-two number of [`IndexShard`]s
//! by the **top bits** of the pattern fingerprint (the low bits stay free
//! for the identity-hashed bucket index inside each shard's map). Shards
//! are held behind `Arc`s, which is what turns ingest from O(index) into
//! O(delta): merging an [`crate::IndexDelta`] clones and republishes only
//! the shards the delta's fingerprints land in, while every untouched
//! shard is shared by pointer with the previous index version.
//!
//! Two layers use this:
//!
//! * [`crate::PatternIndex`] is the *value* type: a vector of shard `Arc`s
//!   plus corpus metadata. Cloning it is cheap (pointer copies), and
//!   [`crate::PatternIndex::merge_delta`] performs the copy-on-write merge
//!   via `Arc::make_mut` on touched shards only.
//! * [`ShardedIndex`] is the *concurrent* wrapper a long-running service
//!   owns: per-shard merge locks let independent ingests that touch
//!   disjoint shards run their expensive clone-and-merge work in
//!   parallel, and a single epoch slot publishes each result atomically,
//!   so readers always see a consistent index — never a torn one.

use crate::build::{FastMap, PatternIndex};
use crate::delta::{DeltaError, IndexDelta, ShardPart};
use crate::stats::StatsAcc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default number of shard bits (2⁶ = 64 shards): fine enough that a
/// small delta republishes a small fraction of the index, coarse enough
/// that per-shard map overhead stays negligible.
pub(crate) const DEFAULT_SHARD_BITS: u32 = 6;

/// Upper bound on shard bits (2¹² = 4096 shards) — beyond this the
/// per-shard fixed costs dominate any republish savings.
pub(crate) const MAX_SHARD_BITS: u32 = 12;

/// Which shard a fingerprint belongs to: the top `shard_bits` bits.
/// Using the *top* bits keeps the low bits — which the identity-hashed
/// shard maps use for bucket placement — uniformly distributed within a
/// shard, and makes ascending (shard, fingerprint) order identical to
/// ascending global fingerprint order (the persist layout relies on it).
#[inline]
pub(crate) fn shard_of(fingerprint: u64, shard_bits: u32) -> usize {
    if shard_bits == 0 {
        0
    } else {
        (fingerprint >> (64 - shard_bits)) as usize
    }
}

/// One shard of the index: the fingerprint → accumulator map (and display
/// strings, in `keep_patterns` builds) for every pattern whose fingerprint
/// routes here, plus a version counter bumped on each merge that touched
/// this shard. Shards are immutable once published behind an `Arc`;
/// versions let tests and monitoring assert that an ingest republished
/// only the shards its delta touched.
#[derive(Debug, Clone, Default)]
pub struct IndexShard {
    pub(crate) map: FastMap<StatsAcc>,
    pub(crate) patterns: FastMap<String>,
    pub(crate) version: u64,
}

impl IndexShard {
    /// Number of distinct patterns stored in this shard.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pattern routes to this shard yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// How many delta merges have touched this shard since it was built
    /// or loaded.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Fold one per-shard sub-delta in and bump the version. The
    /// fixed-point accumulator merge is exactly associative and
    /// commutative, so any merge order produces identical bytes.
    pub(crate) fn apply(&mut self, part: ShardPart) {
        for (fp, acc) in part.acc {
            self.map.entry(fp).or_default().merge(&acc);
        }
        for (fp, name) in part.names {
            self.patterns.entry(fp).or_insert(name);
        }
        self.version += 1;
    }

    /// Copy-on-write merge: clone this shard's data and apply the part.
    pub(crate) fn merged(&self, part: ShardPart) -> IndexShard {
        let mut next = self.clone();
        next.apply(part);
        next
    }
}

/// What one [`ShardedIndex::merge_delta`] changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMerge {
    /// Shards the delta touched (cloned + republished); every other shard
    /// of the new epoch shares its `Arc` with the previous epoch.
    pub touched_shards: usize,
    /// Distinct patterns the delta contributed (pre-merge).
    pub delta_patterns: usize,
    /// Corpus columns in the index after the merge.
    pub num_columns: u64,
    /// Distinct patterns in the index after the merge.
    pub total_patterns: usize,
}

/// The concurrent sharded index a long-running service owns.
///
/// * **Readers** call [`ShardedIndex::snapshot`]: one `RwLock` read to
///   clone the current epoch's `Arc<PatternIndex>` — wait-free for the
///   holder, immutable forever, and internally consistent (an epoch is
///   published atomically, so a snapshot can never mix shards from two
///   half-applied ingests).
/// * **Writers** call [`ShardedIndex::merge_delta`]: the delta splits
///   into per-shard sub-deltas, the touched shards' merge locks are taken
///   (in ascending order — deadlock-free), the expensive clone-and-merge
///   of each touched shard runs while holding only those locks, and the
///   new epoch — untouched shard `Arc`s shared from the latest epoch,
///   touched ones replaced — is published under one brief write lock of
///   pointer copies. Two ingests whose deltas touch disjoint shards
///   therefore run their merge work fully in parallel.
#[derive(Debug)]
pub struct ShardedIndex {
    epoch: RwLock<Arc<PatternIndex>>,
    merge_locks: Box<[Mutex<()>]>,
    /// Bumped once per published epoch (install or delta merge), so
    /// monitoring can tell "the index changed" apart from "the same index,
    /// observed twice" without comparing snapshots.
    generation: AtomicU64,
}

impl ShardedIndex {
    /// Wrap an index for concurrent serving. The shard count is fixed for
    /// the lifetime of the wrapper; [`ShardedIndex::install`] reshapes
    /// replacement images to it.
    pub fn new(index: PatternIndex) -> ShardedIndex {
        let merge_locks = (0..index.shard_count()).map(|_| Mutex::new(())).collect();
        ShardedIndex {
            epoch: RwLock::new(Arc::new(index)),
            merge_locks,
            generation: AtomicU64::new(0),
        }
    }

    /// The current epoch: an immutable, internally consistent index.
    pub fn snapshot(&self) -> Arc<PatternIndex> {
        Arc::clone(&self.epoch.read().expect("index epoch lock poisoned"))
    }

    /// How many epochs have been published over this wrapper's lifetime
    /// (each [`ShardedIndex::install`] and each successful
    /// [`ShardedIndex::merge_delta`] counts one). Starts at 0 for the
    /// index the wrapper was constructed with.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Replace the live index wholesale (e.g. after loading a persisted
    /// image). The replacement is resharded to this wrapper's shard count
    /// when it arrives with a different one — a v3 single-shard image
    /// loads as one shard and is spread out here. Taking every merge lock
    /// first keeps a concurrent [`ShardedIndex::merge_delta`] from
    /// grafting shards of the outgoing index onto the new epoch.
    pub fn install(&self, index: PatternIndex) {
        let want_bits = self.merge_locks.len().trailing_zeros();
        let index = if index.shard_count() == self.merge_locks.len() {
            index
        } else {
            index.reshard(want_bits)
        };
        let _guards: Vec<_> = self
            .merge_locks
            .iter()
            .map(|m| m.lock().expect("shard merge lock poisoned"))
            .collect();
        *self.epoch.write().expect("index epoch lock poisoned") = Arc::new(index);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Merge a profiled delta into the live index, republishing only the
    /// shards it touches. Statistics are bit-for-bit identical to a
    /// from-scratch rebuild over the union corpus, and to
    /// [`PatternIndex::merge_delta`] on a value clone.
    ///
    /// Fails when the delta was profiled with a different token-limit τ.
    pub fn merge_delta(&self, delta: IndexDelta) -> Result<ShardMerge, DeltaError> {
        let delta_patterns = delta.len();
        let delta_tau = delta.tau();
        let current = self.snapshot();
        // Fast-fail before any merge work. Not authoritative: an install()
        // may swap in a different-τ index before we take our locks, so the
        // check is repeated against the post-lock epoch below.
        if delta_tau != current.tau {
            return Err(DeltaError::TauMismatch {
                index_tau: current.tau,
                delta_tau,
            });
        }
        let parts = delta.into_shard_parts(current.shard_bits());
        let touched: Vec<usize> = parts
            .parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i))
            .collect();

        // Serialize against other merges of the same shards (ascending
        // order — no deadlock with any other merge or with install).
        let _guards: Vec<_> = touched
            .iter()
            .map(|&i| {
                self.merge_locks[i]
                    .lock()
                    .expect("shard merge lock poisoned")
            })
            .collect();

        // Re-read the epoch *after* locking: our shards cannot change
        // while we hold their locks, so cloning from this base is safe
        // even though merges of other shards may still land concurrently.
        let base = self.snapshot();
        if delta_tau != base.tau {
            // An install() slipped in before our locks and replaced the
            // index with a different-τ population.
            return Err(DeltaError::TauMismatch {
                index_tau: base.tau,
                delta_tau,
            });
        }
        let mut rebuilt: Vec<(usize, Arc<IndexShard>)> = Vec::with_capacity(touched.len());
        let mut parts = parts;
        for &i in &touched {
            let part = parts.parts[i].take().expect("touched shard has a part");
            rebuilt.push((i, Arc::new(base.shards[i].merged(part))));
        }

        // Publish: graft the rebuilt shards onto the *latest* epoch under
        // the write lock — O(shard count) pointer copies, nothing more.
        let mut epoch = self.epoch.write().expect("index epoch lock poisoned");
        if delta_tau != epoch.tau {
            // Authoritative re-check: with an empty touched set no merge
            // lock is held, so an install() can land right up to this
            // write lock; folding (even just num_columns) into a
            // different-τ population must fail, not corrupt.
            return Err(DeltaError::TauMismatch {
                index_tau: epoch.tau,
                delta_tau,
            });
        }
        let mut shards: Vec<Arc<IndexShard>> = epoch.shards.to_vec();
        for (i, shard) in rebuilt {
            shards[i] = shard;
        }
        let next = PatternIndex::from_parts(
            shards,
            epoch.shard_bits(),
            epoch.num_columns + parts.num_columns,
            epoch.tau,
        );
        let report = ShardMerge {
            touched_shards: touched.len(),
            delta_patterns,
            num_columns: next.num_columns,
            total_patterns: next.len(),
        };
        *epoch = Arc::new(next);
        self.generation.fetch_add(1, Ordering::Release);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexConfig;
    use av_corpus::{generate_lake, Column, LakeProfile};
    use std::collections::HashMap;

    fn columns_of(lake: &av_corpus::Corpus) -> Vec<&Column> {
        lake.columns().collect()
    }

    fn assert_bitwise_equal(a: &PatternIndex, b: &PatternIndex) {
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    /// A column whose values are a single repeated word, so its delta
    /// contributes only a handful of fingerprints (the generalization
    /// hierarchy of one token) — the "small delta" of the
    /// republish-granularity guarantee.
    fn narrow_column(tag: u32) -> Column {
        Column {
            name: format!("narrow-{tag}"),
            values: (0..40)
                .map(|_| format!("WORD{}", (b'A' + (tag % 26) as u8) as char))
                .collect(),
            meta: av_corpus::ColumnMeta::machine("shard-test", None),
        }
    }

    #[test]
    fn small_delta_republishes_only_touched_shards() {
        let lake = generate_lake(&LakeProfile::tiny(), 42);
        let config = IndexConfig::default();
        let mut index = PatternIndex::build(&columns_of(&lake), &config);
        let before_versions = index.shard_versions();
        let before_ptrs: Vec<*const IndexShard> = index.shards().iter().map(Arc::as_ptr).collect();
        // Share every shard, as the service's snapshot holders do.
        let snapshot = index.clone();

        let col = narrow_column(7);
        let delta = IndexDelta::profile(&[&col], &config);
        let touched = delta.touched_shards(index.shard_bits());
        assert!(touched >= 1, "delta must land somewhere");
        assert!(
            touched < index.shard_count() / 2,
            "a narrow column must not touch most of {} shards (touched {touched})",
            index.shard_count()
        );

        index.merge_delta(delta).unwrap();
        let after_versions = index.shard_versions();
        let mut bumped = 0;
        for (i, (b, a)) in before_versions.iter().zip(&after_versions).enumerate() {
            if a == b {
                // Untouched shard: same version AND the same allocation —
                // merge cloned nothing here.
                assert!(
                    std::ptr::eq(Arc::as_ptr(&index.shards()[i]), before_ptrs[i]),
                    "untouched shard {i} was recloned"
                );
            } else {
                assert_eq!(*a, b + 1);
                bumped += 1;
            }
        }
        assert_eq!(bumped, touched, "version bumps == touched shards");
        // The old snapshot still serves the pre-merge state.
        assert_eq!(snapshot.num_columns + 1, index.num_columns);
    }

    #[test]
    fn sharded_merge_is_bit_identical_to_monolithic_rebuild() {
        let lake_a = generate_lake(&LakeProfile::tiny().scaled(60), 5);
        let lake_b = generate_lake(&LakeProfile::tiny().scaled(40), 6);
        let cols_a = columns_of(&lake_a);
        let cols_b = columns_of(&lake_b);
        let union: Vec<&Column> = cols_a.iter().chain(cols_b.iter()).copied().collect();
        for shard_bits in [0u32, 3, 6, 9] {
            let config = IndexConfig {
                shard_bits,
                ..Default::default()
            };
            let full = PatternIndex::build(&union, &config);
            let sharded = ShardedIndex::new(PatternIndex::build(&cols_a, &config));
            let report = sharded
                .merge_delta(IndexDelta::profile(&cols_b, &config))
                .unwrap();
            assert_eq!(report.num_columns, union.len() as u64);
            assert_eq!(report.total_patterns, full.len());
            assert_bitwise_equal(&full, &sharded.snapshot());
        }
    }

    #[test]
    fn concurrent_disjoint_merges_commit_without_loss() {
        let config = IndexConfig::default();
        let base = generate_lake(&LakeProfile::tiny().scaled(50), 9);
        let sharded = ShardedIndex::new(PatternIndex::build(&columns_of(&base), &config));

        // Eight single-column deltas merged from eight threads at once.
        let cols: Vec<Column> = (0..8).map(narrow_column).collect();
        let deltas: Vec<IndexDelta> = cols
            .iter()
            .map(|c| IndexDelta::profile(&[c], &config))
            .collect();

        // Sequential reference over a value clone.
        let mut reference = (*sharded.snapshot()).clone();
        for d in &deltas {
            reference.merge_delta(d.clone()).unwrap();
        }

        std::thread::scope(|scope| {
            for d in deltas {
                let sharded = &sharded;
                scope.spawn(move || sharded.merge_delta(d).unwrap());
            }
        });
        let merged = sharded.snapshot();
        assert_eq!(merged.num_columns, reference.num_columns);
        // Shard versions can differ (commit order), so compare contents.
        let want: HashMap<u64, crate::PatternStats> = reference.entries().collect();
        assert_eq!(merged.len(), want.len());
        for (k, s) in merged.entries() {
            let r = want.get(&k).expect("pattern survives concurrent merge");
            assert_eq!(s.fpr.to_bits(), r.fpr.to_bits());
            assert_eq!(s.cov, r.cov);
        }
    }

    #[test]
    fn snapshots_are_never_torn() {
        // A reader racing one merge must observe either the exact old or
        // the exact new image, byte for byte.
        let config = IndexConfig::default();
        let lake = generate_lake(&LakeProfile::tiny().scaled(30), 3);
        let sharded = ShardedIndex::new(PatternIndex::build(&columns_of(&lake), &config));
        let before = sharded.snapshot().to_bytes();

        let extra = generate_lake(&LakeProfile::tiny().scaled(20), 4);
        let mut after_index = (*sharded.snapshot()).clone();
        let delta = IndexDelta::profile(&columns_of(&extra), &config);
        after_index.merge_delta(delta.clone()).unwrap();
        let after = after_index.to_bytes();

        std::thread::scope(|scope| {
            let merger = scope.spawn(|| sharded.merge_delta(delta).unwrap());
            for _ in 0..4 {
                let snap = sharded.snapshot();
                let bytes = snap.to_bytes();
                assert!(
                    bytes == before || bytes == after,
                    "snapshot is neither the pre- nor the post-merge epoch"
                );
            }
            merger.join().unwrap();
        });
        assert_eq!(sharded.snapshot().to_bytes(), after);
    }

    #[test]
    fn install_reshards_foreign_images() {
        let lake = generate_lake(&LakeProfile::tiny().scaled(40), 8);
        let cols = columns_of(&lake);
        let one_shard = PatternIndex::build(
            &cols,
            &IndexConfig {
                shard_bits: 0,
                ..Default::default()
            },
        );
        let sharded = ShardedIndex::new(PatternIndex::build(&[], &IndexConfig::default()));
        let shard_count = sharded.snapshot().shard_count();
        sharded.install(one_shard.clone());
        let live = sharded.snapshot();
        assert_eq!(live.shard_count(), shard_count);
        assert_eq!(live.len(), one_shard.len());
        let want: HashMap<u64, crate::PatternStats> = one_shard.entries().collect();
        for (k, s) in live.entries() {
            assert_eq!(want[&k].fpr.to_bits(), s.fpr.to_bits());
        }
    }

    #[test]
    fn generation_counts_every_published_epoch() {
        let config = IndexConfig::default();
        let lake = generate_lake(&LakeProfile::tiny().scaled(20), 12);
        let sharded = ShardedIndex::new(PatternIndex::build(&columns_of(&lake), &config));
        assert_eq!(sharded.generation(), 0);
        sharded
            .merge_delta(IndexDelta::profile(&[&narrow_column(1)], &config))
            .unwrap();
        assert_eq!(sharded.generation(), 1);
        sharded.install((*sharded.snapshot()).clone());
        assert_eq!(sharded.generation(), 2);
        // A failed merge publishes nothing and bumps nothing.
        let bad = IndexDelta::profile(&[&narrow_column(2)], &IndexConfig::with_tau(3));
        assert!(sharded.merge_delta(bad).is_err());
        assert_eq!(sharded.generation(), 2);
    }

    #[test]
    fn tau_mismatch_is_rejected_by_the_wrapper() {
        let lake = generate_lake(&LakeProfile::tiny().scaled(20), 2);
        let cols = columns_of(&lake);
        let sharded = ShardedIndex::new(PatternIndex::build(&cols, &IndexConfig::with_tau(13)));
        let delta = IndexDelta::profile(&cols, &IndexConfig::with_tau(8));
        assert!(matches!(
            sharded.merge_delta(delta),
            Err(DeltaError::TauMismatch { .. })
        ));
    }
}
