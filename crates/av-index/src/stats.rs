//! Per-pattern summary statistics stored in the offline index.
//!
//! Impurity is accumulated in **fixed-point integer** form (scaled by
//! 2³²) rather than floating point. Integer addition is exactly
//! associative and commutative, which buys two properties the service
//! layer depends on:
//!
//! * shard-parallel builds are bit-for-bit deterministic regardless of
//!   thread count or shard boundaries, and
//! * an incremental [`crate::IndexDelta`] merge produces **identical**
//!   statistics to a from-scratch rebuild on the union corpus, no matter
//!   how the index is partitioned into fingerprint shards
//!   ([`crate::IndexShard`]) or in which order per-shard sub-deltas land.
//!
//! The quantization error is at most 2⁻³³ per covering column — orders of
//! magnitude below the 1e-9 resolution any consumer of `FPR_T` uses.

/// Fixed-point scale for impurity sums: 32 fractional bits.
// av-guard: allow(G4, reason = "the quantization constant itself: both conversion boundaries scale by it")
pub(crate) const IMP_SCALE: f64 = (1u64 << 32) as f64;

/// Pre-computed statistics for one pattern `p ∈ P(T)` (§2.4): the estimated
/// false-positive rate `FPR_T(p)` (Def. 3) and the coverage `Cov_T(p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternStats {
    /// `FPR_T(p)`: average impurity over the columns `p` covers.
    // av-guard: allow(G4, reason = "presentation-side output of finish(); never merged or persisted")
    pub fpr: f64,
    /// `Cov_T(p)`: number of corpus columns with at least one matching value.
    pub cov: u64,
    /// Number of tokens in the pattern (for the Fig. 13a distribution).
    pub token_len: u8,
}

/// Mergeable accumulator used during the map/reduce build and kept inside
/// the index so later deltas can fold in exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StatsAcc {
    /// Sum of per-column impurities, fixed-point scaled by [`IMP_SCALE`].
    pub imp_fp: u64,
    /// Number of covering columns.
    pub cols: u64,
    /// Token length (constant per pattern).
    pub token_len: u8,
}

impl StatsAcc {
    /// Fold one covering column's impurity (`1 − matched_frac ∈ [0, 1]`).
    pub(crate) fn add_impurity(&mut self, impurity: f64, token_len: u8) {
        self.imp_fp += (impurity.clamp(0.0, 1.0) * IMP_SCALE).round() as u64;
        self.cols += 1;
        self.token_len = token_len;
    }

    /// Raw accumulator (deserialization).
    pub(crate) fn from_raw(imp_fp: u64, cols: u64, token_len: u8) -> StatsAcc {
        StatsAcc {
            imp_fp,
            cols,
            token_len,
        }
    }

    pub(crate) fn merge(&mut self, other: &StatsAcc) {
        self.imp_fp += other.imp_fp;
        self.cols += other.cols;
        self.token_len = self.token_len.max(other.token_len);
    }

    pub(crate) fn finish(&self) -> PatternStats {
        PatternStats {
            fpr: if self.cols == 0 {
                0.0
            } else {
                (self.imp_fp as f64 / IMP_SCALE) / self.cols as f64
            },
            cov: self.cols,
            token_len: self.token_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_merge_and_finish() {
        // Example 5 of the paper: 5000 covering columns, 4800 with impurity
        // 0 and 200 with impurity 1% → FPR 0.04%.
        let mut a = StatsAcc::default();
        for _ in 0..4800 {
            a.add_impurity(0.0, 4);
        }
        let mut b = StatsAcc::default();
        for _ in 0..200 {
            b.add_impurity(0.01, 4);
        }
        a.merge(&b);
        let s = a.finish();
        assert_eq!(s.cov, 5000);
        assert!((s.fpr - 0.0004).abs() < 1e-9);
    }

    #[test]
    fn merge_is_order_independent_bitwise() {
        let impurities = [0.1, 0.0, 0.37, 0.004, 1.0, 0.25];
        let mut forward = StatsAcc::default();
        for &i in &impurities {
            forward.add_impurity(i, 3);
        }
        let mut backward = StatsAcc::default();
        for &i in impurities.iter().rev() {
            backward.add_impurity(i, 3);
        }
        assert_eq!(forward, backward);
        assert_eq!(
            forward.finish().fpr.to_bits(),
            backward.finish().fpr.to_bits()
        );
    }

    #[test]
    fn empty_acc_has_zero_fpr() {
        let s = StatsAcc::default().finish();
        assert_eq!(s.fpr, 0.0);
        assert_eq!(s.cov, 0);
    }
}
