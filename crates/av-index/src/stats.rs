//! Per-pattern summary statistics stored in the offline index.

/// Pre-computed statistics for one pattern `p ∈ P(T)` (§2.4): the estimated
/// false-positive rate `FPR_T(p)` (Def. 3) and the coverage `Cov_T(p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternStats {
    /// `FPR_T(p)`: average impurity over the columns `p` covers.
    pub fpr: f64,
    /// `Cov_T(p)`: number of corpus columns with at least one matching value.
    pub cov: u64,
    /// Number of tokens in the pattern (for the Fig. 13a distribution).
    pub token_len: u8,
}

/// Mutable accumulator used during the map/reduce build.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StatsAcc {
    /// Sum of per-column impurities.
    pub imp_sum: f64,
    /// Number of covering columns.
    pub cols: u64,
    /// Token length (constant per pattern).
    pub token_len: u8,
}

impl StatsAcc {
    pub(crate) fn merge(&mut self, other: &StatsAcc) {
        self.imp_sum += other.imp_sum;
        self.cols += other.cols;
        self.token_len = self.token_len.max(other.token_len);
    }

    pub(crate) fn finish(&self) -> PatternStats {
        PatternStats {
            fpr: if self.cols == 0 {
                0.0
            } else {
                self.imp_sum / self.cols as f64
            },
            cov: self.cols,
            token_len: self.token_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_merge_and_finish() {
        // Example 5 of the paper: 5000 covering columns, 4800 with impurity
        // 0 and 200 with impurity 1% → FPR 0.04%.
        let mut a = StatsAcc {
            imp_sum: 0.0,
            cols: 4800,
            token_len: 4,
        };
        let b = StatsAcc {
            imp_sum: 200.0 * 0.01,
            cols: 200,
            token_len: 4,
        };
        a.merge(&b);
        let s = a.finish();
        assert_eq!(s.cov, 5000);
        assert!((s.fpr - 0.0004).abs() < 1e-12);
    }

    #[test]
    fn empty_acc_has_zero_fpr() {
        let s = StatsAcc::default().finish();
        assert_eq!(s.fpr, 0.0);
        assert_eq!(s.cov, 0);
    }
}
