//! Index persistence: a compact binary format so the offline stage's output
//! can be shipped to the online service (§2.4: "the result from the offline
//! step is an index for lookup").
//!
//! Version 4 layout (little-endian) — a **shard directory**:
//!
//! ```text
//! magic "AVIX" | version u32 | num_columns u64 | tau u64 | shard_bits u32
//! then, for each of the 2^shard_bits shards in order:
//!   n_entries u64, n_entries × (fingerprint u64, imp_fp u64, cov u64, token_len u8)
//!   n_strings u64, n_strings × (fingerprint u64, len u32, utf-8 bytes)
//! ```
//!
//! Entries are sorted by fingerprint within each shard; because shard
//! routing uses the fingerprint's *top* bits, the concatenation of the
//! shard sections is still globally fingerprint-sorted — a 1-shard v4
//! image is byte-identical to the old single-section v3 body, differing
//! only in the header. Version 3 images (no `shard_bits` field, one
//! global entry/string section) still load, landing in a single shard
//! that callers [reshard](PatternIndex::reshard) as needed.
//!
//! Both versions store the **raw fixed-point impurity accumulator**
//! (`imp_fp`, scaled by 2³²) instead of the finished `fpr` float, so a
//! reloaded index remains exactly mergeable with later
//! [`crate::IndexDelta`]s — the persist → reload → merge path is
//! bit-for-bit identical to never having restarted. Shard versions are
//! runtime merge counters, not statistics, and are deliberately not
//! persisted: a freshly loaded index starts every shard at version 0.

use crate::build::PatternIndex;
use crate::shard::{shard_of, IndexShard, MAX_SHARD_BITS};
use crate::stats::StatsAcc;
use av_durable::{write_atomic, OsStorage, Storage};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"AVIX";
// v4: sharded directory layout (see module docs). v3 (single-shard) still
// loads; v2 and earlier predate the CharClass whitespace change — their
// statistics are not comparable and they are refused.
const VERSION: u32 = 4;
const OLD_SINGLE_SHARD_VERSION: u32 = 3;

/// Errors from loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not an index or is corrupt.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index io error: {e}"),
            PersistError::Format(m) => write!(f, "index format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Append one shard's entry + string sections (the exact per-shard byte
/// layout of an AVIX v4 body) to `buf`. Entries sorted by fingerprint.
fn put_shard_sections(shard: &IndexShard, buf: &mut BytesMut) {
    let mut entries: Vec<(u64, StatsAcc)> = shard.map.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_by_key(|(k, _)| *k);
    buf.put_u64_le(entries.len() as u64);
    for (k, s) in &entries {
        buf.put_u64_le(*k);
        buf.put_u64_le(s.imp_fp);
        buf.put_u64_le(s.cols);
        buf.put_u8(s.token_len);
    }
    let strings: Vec<(u64, &str)> = entries
        .iter()
        .filter_map(|(k, _)| shard.patterns.get(k).map(|s| (*k, s.as_str())))
        .collect();
    buf.put_u64_le(strings.len() as u64);
    for (k, s) in strings {
        buf.put_u64_le(k);
        buf.put_u32_le(s.len() as u32);
        buf.put_slice(s.as_bytes());
    }
}

impl IndexShard {
    /// Serialize this shard's entry and string sections — byte-identical
    /// to the slice of an AVIX v4 image that holds this shard. Checkpoint
    /// shard files are this plus framing owned by the durability layer.
    pub fn section_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.len() * 25);
        put_shard_sections(self, &mut buf);
        buf.freeze()
    }

    /// Decode entry + string sections produced by
    /// [`IndexShard::section_bytes`], verifying that every fingerprint
    /// actually routes to shard `shard_idx` under `shard_bits` — a shard
    /// file that was renamed or swapped fails here instead of silently
    /// misrouting lookups.
    pub fn from_section_bytes(
        mut buf: &[u8],
        shard_idx: usize,
        shard_bits: u32,
    ) -> Result<IndexShard, PersistError> {
        let err = |m: &str| PersistError::Format(m.to_string());
        let mut shard = IndexShard::default();
        if buf.remaining() < 8 {
            return Err(err("missing entry section"));
        }
        let n = buf.get_u64_le() as usize;
        shard.map.reserve(n.min(buf.remaining() / 25));
        for _ in 0..n {
            if buf.remaining() < 25 {
                return Err(err("truncated entries"));
            }
            let k = buf.get_u64_le();
            if shard_of(k, shard_bits) != shard_idx {
                return Err(PersistError::Format(format!(
                    "fingerprint {k:#018x} does not route to shard {shard_idx}"
                )));
            }
            let imp_fp = buf.get_u64_le();
            let cols = buf.get_u64_le();
            let token_len = buf.get_u8();
            shard
                .map
                .insert(k, StatsAcc::from_raw(imp_fp, cols, token_len));
        }
        if buf.remaining() < 8 {
            return Err(err("missing string section"));
        }
        let ns = buf.get_u64_le() as usize;
        for _ in 0..ns {
            if buf.remaining() < 12 {
                return Err(err("truncated strings"));
            }
            let k = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(err("truncated string payload"));
            }
            if !shard.map.contains_key(&k) {
                return Err(err("pattern string without a matching entry"));
            }
            let s = String::from_utf8(buf[..len].to_vec())
                .map_err(|_| err("invalid utf-8 in pattern string"))?;
            buf.advance(len);
            shard.patterns.insert(k, s);
        }
        if buf.remaining() > 0 {
            return Err(err("trailing bytes after string section"));
        }
        Ok(shard)
    }
}

impl PatternIndex {
    /// Serialize to bytes (AVIX v4).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(36 + self.len() * 25 + self.shard_count() * 16);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.num_columns);
        buf.put_u64_le(self.tau as u64);
        buf.put_u32_le(self.shard_bits());
        for shard in self.shards.iter() {
            put_shard_sections(shard, &mut buf);
        }
        buf.freeze()
    }

    /// Assemble an index from individually decoded shards (the checkpoint
    /// recovery path). `shards.len()` must be `2^shard_bits`; routing
    /// correctness within each shard is
    /// [`IndexShard::from_section_bytes`]'s job.
    pub fn from_shards(
        shards: Vec<IndexShard>,
        shard_bits: u32,
        num_columns: u64,
        tau: usize,
    ) -> Result<PatternIndex, PersistError> {
        if shard_bits > MAX_SHARD_BITS {
            return Err(PersistError::Format(format!(
                "implausible shard_bits {shard_bits}"
            )));
        }
        if shards.len() != 1usize << shard_bits {
            return Err(PersistError::Format(format!(
                "{} shards do not fit shard_bits {shard_bits}",
                shards.len()
            )));
        }
        Ok(PatternIndex::from_parts(
            shards.into_iter().map(Arc::new).collect(),
            shard_bits,
            num_columns,
            tau,
        ))
    }

    /// Deserialize from bytes. Accepts v4 (sharded) and v3 (single-shard;
    /// the result has one shard — [`PatternIndex::reshard`] spreads it).
    pub fn from_bytes(mut buf: &[u8]) -> Result<PatternIndex, PersistError> {
        let err = |m: &str| PersistError::Format(m.to_string());
        if buf.remaining() < 4 || &buf[..4] != MAGIC {
            return Err(err("bad magic"));
        }
        buf.advance(4);
        if buf.remaining() < 20 {
            return Err(err("truncated header"));
        }
        let version = buf.get_u32_le();
        let num_columns = buf.get_u64_le();
        let tau = buf.get_u64_le() as usize;
        let (shard_bits, sections) = match version {
            VERSION => {
                if buf.remaining() < 4 {
                    return Err(err("truncated header"));
                }
                let bits = buf.get_u32_le();
                if bits > MAX_SHARD_BITS {
                    return Err(PersistError::Format(format!(
                        "implausible shard_bits {bits}"
                    )));
                }
                (bits, 1usize << bits)
            }
            OLD_SINGLE_SHARD_VERSION => (0, 1),
            other => {
                return Err(PersistError::Format(format!("unsupported version {other}")));
            }
        };
        let mut index = PatternIndex::with_capacity(0, num_columns, tau, shard_bits);
        for section in 0..sections {
            if buf.remaining() < 8 {
                return Err(err("missing entry section"));
            }
            let n = buf.get_u64_le() as usize;
            // Section `s` holds shard `s`'s entries; pre-size its map
            // (bounded by what the buffer can actually still hold, so a
            // corrupt count cannot trigger a huge allocation).
            index.reserve_shard(section, n.min(buf.remaining() / 25));
            for _ in 0..n {
                if buf.remaining() < 25 {
                    return Err(err("truncated entries"));
                }
                let k = buf.get_u64_le();
                let imp_fp = buf.get_u64_le();
                let cols = buf.get_u64_le();
                let token_len = buf.get_u8();
                index.insert_raw(k, StatsAcc::from_raw(imp_fp, cols, token_len));
            }
            if buf.remaining() < 8 {
                return Err(err("missing string section"));
            }
            let ns = buf.get_u64_le() as usize;
            for _ in 0..ns {
                if buf.remaining() < 12 {
                    return Err(err("truncated strings"));
                }
                let k = buf.get_u64_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(err("truncated string payload"));
                }
                let s = String::from_utf8(buf[..len].to_vec())
                    .map_err(|_| err("invalid utf-8 in pattern string"))?;
                buf.advance(len);
                index.insert_pattern_string(k, s);
            }
        }
        if buf.remaining() > 0 {
            return Err(err("trailing bytes after last shard"));
        }
        Ok(index)
    }

    /// A stable FNV-1a digest of the persisted byte image. Because
    /// [`PatternIndex::to_bytes`] sorts entries by fingerprint per shard,
    /// shard routing is pure fingerprint arithmetic, and the build is
    /// bit-deterministic across thread counts, the digest of an index
    /// built from a seeded corpus is a constant — CI pins it to catch
    /// silent format or determinism drift.
    pub fn content_digest(&self) -> u64 {
        av_pattern::fnv1a(&self.to_bytes())
    }

    /// Write the index through `storage` atomically (see
    /// [`write_atomic`]): the bytes go to a sibling `.tmp` file which is
    /// fsynced and renamed over `path`, then the parent directory is
    /// fsynced so the rename survives a crash. A crash at any point
    /// leaves either the old image or the new one at `path`, never a
    /// truncated hybrid.
    pub fn save_with(
        &self,
        storage: &dyn Storage,
        path: impl AsRef<Path>,
    ) -> Result<(), PersistError> {
        write_atomic(storage, path.as_ref(), &self.to_bytes())?;
        Ok(())
    }

    /// [`save_with`](Self::save_with) against the real filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_with(&OsStorage, path)
    }

    /// Read an index through `storage`.
    pub fn load_with(
        storage: &dyn Storage,
        path: impl AsRef<Path>,
    ) -> Result<PatternIndex, PersistError> {
        let buf = storage.read(path.as_ref())?;
        PatternIndex::from_bytes(&buf)
    }

    /// [`load_with`](Self::load_with) against the real filesystem.
    pub fn load(path: impl AsRef<Path>) -> Result<PatternIndex, PersistError> {
        Self::load_with(&OsStorage, path)
    }
}

#[cfg(test)]
mod tests {

    use crate::build::{IndexConfig, PatternIndex};
    use av_corpus::{generate_lake, Column, LakeProfile};

    #[test]
    fn roundtrip_preserves_everything() {
        let corpus = generate_lake(&LakeProfile::tiny(), 8);
        let cols: Vec<&Column> = corpus.columns().collect();
        let config = IndexConfig {
            keep_patterns: true,
            ..Default::default()
        };
        let index = PatternIndex::build(&cols, &config);
        let bytes = index.to_bytes();
        let restored = PatternIndex::from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), index.len());
        assert_eq!(restored.num_columns, index.num_columns);
        assert_eq!(restored.tau, index.tau);
        assert_eq!(restored.shard_count(), index.shard_count());
        let rmap: std::collections::HashMap<u64, crate::stats::PatternStats> =
            restored.entries().collect();
        for (k, s) in index.entries() {
            let r = rmap.get(&k).expect("entry survives");
            assert_eq!(r.cov, s.cov);
            assert!((r.fpr - s.fpr).abs() < 1e-15);
            assert_eq!(restored.pattern_string(k), index.pattern_string(k));
        }
        // The roundtrip is byte-stable: serialize → load → serialize.
        assert_eq!(restored.to_bytes(), bytes);
    }

    /// A single-shard v4 image carries exactly the v3 body after its
    /// header, and the v3 loader still accepts the old framing.
    #[test]
    fn one_shard_v4_is_v3_modulo_header_and_v3_still_loads() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(60), 3);
        let cols: Vec<&Column> = corpus.columns().collect();
        let config = IndexConfig {
            shard_bits: 0,
            keep_patterns: true,
            ..Default::default()
        };
        let index = PatternIndex::build(&cols, &config);
        let v4 = index.to_bytes();

        // v4 header: magic(4) version(4) num_columns(8) tau(8) bits(4).
        // v3 header: magic(4) version(4) num_columns(8) tau(8).
        let mut v3 = Vec::with_capacity(v4.len() - 4);
        v3.extend_from_slice(b"AVIX");
        v3.extend_from_slice(&3u32.to_le_bytes());
        v3.extend_from_slice(&index.num_columns.to_le_bytes());
        v3.extend_from_slice(&(index.tau as u64).to_le_bytes());
        v3.extend_from_slice(&v4[28..]); // body, bit-identical by design

        let loaded = PatternIndex::from_bytes(&v3).expect("v3 image loads");
        assert_eq!(loaded.shard_count(), 1);
        assert_eq!(loaded.len(), index.len());
        // Re-serializing the v3-loaded index produces the v4 image again.
        assert_eq!(loaded.to_bytes(), v4);
        // And resharding it to the default layout matches a native build.
        let native = PatternIndex::build(
            &cols,
            &IndexConfig {
                keep_patterns: true,
                ..Default::default()
            },
        );
        assert_eq!(
            loaded.reshard(native.shard_bits()).to_bytes(),
            native.to_bytes()
        );
    }

    /// The digest of the seeded tiny lake is a constant: lake generation,
    /// enumeration, the fold-direct build, shard routing, and the persist
    /// layout are all deterministic. A mismatch here means the AVIX byte
    /// image silently drifted — bump the format version (and this value)
    /// deliberately instead. `examples/index_build.rs` asserts the same
    /// constant in CI.
    #[test]
    fn tiny_lake_digest_is_pinned() {
        let corpus = generate_lake(&LakeProfile::tiny(), 42);
        let cols: Vec<&Column> = corpus.columns().collect();
        let index = PatternIndex::build(&cols, &IndexConfig::default());
        assert_eq!(index.len(), 45379);
        assert_eq!(index.content_digest(), PINNED_TINY_LAKE_DIGEST);
    }

    /// Shared with `examples/index_build.rs`; see
    /// [`tiny_lake_digest_is_pinned`].
    const PINNED_TINY_LAKE_DIGEST: u64 = 0xb3259407d0bafd49;

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(PatternIndex::from_bytes(b"not an index").is_err());
        assert!(PatternIndex::from_bytes(b"AVIX").is_err());
        let corpus = generate_lake(&LakeProfile::tiny().scaled(50), 8);
        let cols: Vec<&Column> = corpus.columns().collect();
        let index = PatternIndex::build(&cols, &IndexConfig::default());
        let bytes = index.to_bytes();
        // Truncate mid-entries.
        assert!(PatternIndex::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        // Trailing garbage after the last shard is rejected too.
        let mut extra = bytes.to_vec();
        extra.push(0);
        assert!(PatternIndex::from_bytes(&extra).is_err());
        // v2 and earlier are refused outright.
        let mut old = bytes.to_vec();
        old[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert!(PatternIndex::from_bytes(&old).is_err());
    }

    #[test]
    fn save_and_load_via_file() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(60), 2);
        let cols: Vec<&Column> = corpus.columns().collect();
        let index = PatternIndex::build(&cols, &IndexConfig::default());
        let dir = std::env::temp_dir().join("av_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.avix");
        index.save(&path).unwrap();
        let loaded = PatternIndex::load(&path).unwrap();
        assert_eq!(loaded.len(), index.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_sections_reassemble_the_exact_index() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(80), 17);
        let cols: Vec<&Column> = corpus.columns().collect();
        let config = IndexConfig {
            shard_bits: 3,
            keep_patterns: true,
            ..Default::default()
        };
        let index = PatternIndex::build(&cols, &config);
        // Serialize each shard independently, decode, reassemble: the
        // persisted image of the result is byte-identical.
        let shards: Vec<crate::IndexShard> = index
            .shards()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                crate::IndexShard::from_section_bytes(&s.section_bytes(), i, index.shard_bits())
                    .unwrap()
            })
            .collect();
        let rebuilt =
            PatternIndex::from_shards(shards, index.shard_bits(), index.num_columns, index.tau)
                .unwrap();
        assert_eq!(rebuilt.to_bytes(), index.to_bytes());
        // A shard decoded under the wrong index refuses to misroute.
        let donor = &index.shards()[1];
        if !donor.is_empty() {
            assert!(crate::IndexShard::from_section_bytes(
                &donor.section_bytes(),
                0,
                index.shard_bits()
            )
            .is_err());
        }
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_residue() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(40), 6);
        let cols: Vec<&Column> = corpus.columns().collect();
        let index = PatternIndex::build(&cols, &IndexConfig::default());
        let dir = std::env::temp_dir().join("av_index_atomic_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.avix");
        index.save(&path).unwrap();
        index.save(&path).unwrap(); // overwrite goes through the same dance
        assert!(!dir.join("atomic.avix.tmp").exists());
        let loaded = PatternIndex::load(&path).unwrap();
        assert_eq!(loaded.to_bytes(), index.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_size_is_compact() {
        // The paper: terabyte corpus → sub-gigabyte index. Proportionally:
        // our index must be much smaller than the raw values it summarizes.
        // Use realistic column sizes — compactness comes from patterns being
        // shared across values and columns.
        let mut profile = LakeProfile::tiny().scaled(400);
        profile.rows = (100, 300);
        let corpus = generate_lake(&profile, 31);
        let cols: Vec<&Column> = corpus.columns().collect();
        let raw: usize = cols
            .iter()
            .flat_map(|c| c.values.iter())
            .map(|v| v.len())
            .sum();
        let index = PatternIndex::build(&cols, &IndexConfig::default());
        let bytes = index.to_bytes();
        assert!(
            bytes.len() < raw,
            "index {} bytes vs raw {} bytes",
            bytes.len(),
            raw
        );
    }
}
