//! Incremental index maintenance: profile *new* corpus columns into an
//! [`IndexDelta`] and fold it into a live [`PatternIndex`] with
//! [`PatternIndex::merge_delta`] — the "answering under updates" dataflow:
//! query-time lookups stay O(1) against the live index while the corpus
//! grows, and nothing is ever rescanned.
//!
//! Exactness: both the index and the delta keep fixed-point integer
//! impurity accumulators (see [`crate::PatternStats`]'s module docs), so
//! `build(A) ⊕ delta(B)` equals `build(A ∪ B)` bit-for-bit on every
//! statistic, for any sharding and any merge order.
//!
//! At merge time a delta [splits](IndexDelta::into_shard_parts) into
//! per-shard sub-deltas routed by fingerprint, which is what lets
//! [`PatternIndex::merge_delta`] (and the concurrent
//! [`crate::ShardedIndex`]) clone and republish **only the shards the
//! delta touches** — update cost tracks the delta, not the database.

use crate::build::{index_one_column, FastMap, IndexConfig};
use crate::shard::shard_of;
use crate::stats::StatsAcc;
use av_corpus::Column;

#[cfg(doc)]
use crate::build::PatternIndex;

/// A profiled batch of new corpus columns, ready to merge into a live
/// [`PatternIndex`].
#[derive(Debug, Default, Clone)]
pub struct IndexDelta {
    pub(crate) acc: FastMap<StatsAcc>,
    pub(crate) names: FastMap<String>,
    pub(crate) num_columns: u64,
    pub(crate) tau: usize,
}

/// Why a delta could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was profiled under a different token-limit τ than the
    /// index was built with; their pattern populations are incomparable.
    TauMismatch {
        /// τ of the receiving index.
        index_tau: usize,
        /// τ the delta was profiled with.
        delta_tau: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::TauMismatch {
                index_tau,
                delta_tau,
            } => write!(
                f,
                "delta profiled with tau {delta_tau} cannot merge into index built with tau {index_tau}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl IndexDelta {
    /// Profile `columns` into a delta with the same map/reduce dataflow the
    /// full build uses: workers pull columns off a shared atomic cursor (a
    /// dynamic work queue, so a handful of giant columns cannot strand the
    /// other workers the way static chunking does), fold into thread-local
    /// accumulators with a per-worker reusable scratch, and merge at the
    /// end. The fixed-point accumulator merge is order-independent, so the
    /// result is bit-identical for every thread count and schedule.
    pub fn profile(columns: &[&Column], config: &IndexConfig) -> IndexDelta {
        let results: Vec<(FastMap<StatsAcc>, FastMap<String>)> =
            crate::build::run_work_queue(columns.len(), config, |queue| {
                let mut acc: FastMap<StatsAcc> = FastMap::default();
                let mut names: FastMap<String> = FastMap::default();
                let mut scratch = crate::build::ColumnScratch::default();
                while let Some(range) = queue.next_range() {
                    for col in &columns[range] {
                        index_one_column(col, config, &mut acc, &mut names, &mut scratch);
                    }
                }
                (acc, names)
            });
        let mut merged: FastMap<StatsAcc> = FastMap::default();
        let mut names: FastMap<String> = FastMap::default();
        for (shard, shard_names) in results {
            for (k, v) in shard {
                merged.entry(k).or_default().merge(&v);
            }
            names.extend(shard_names);
        }
        IndexDelta {
            acc: merged,
            names,
            num_columns: columns.len() as u64,
            tau: config.tau,
        }
    }

    /// Number of columns profiled into this delta.
    pub fn num_columns(&self) -> u64 {
        self.num_columns
    }

    /// Number of distinct patterns in this delta.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True when no patterns were profiled.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// The token-limit τ this delta was profiled with.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// How many of `2^shard_bits` fingerprint shards this delta would
    /// touch if merged into an index sharded that way — the number of
    /// shards an ingest has to clone and republish.
    pub fn touched_shards(&self, shard_bits: u32) -> usize {
        // Clamp once and route with the same value — clamping only the
        // count while routing with the raw bits would index out of range.
        let shard_bits = shard_bits.min(crate::shard::MAX_SHARD_BITS);
        let count = 1usize << shard_bits;
        let mut touched = vec![false; count];
        for fp in self.acc.keys() {
            touched[shard_of(*fp, shard_bits)] = true;
        }
        touched.iter().filter(|t| **t).count()
    }

    /// Split into per-shard sub-deltas: entry `i` of `parts` holds the
    /// accumulators (and display names) whose fingerprints route to shard
    /// `i`, or `None` when the delta does not touch that shard.
    pub(crate) fn into_shard_parts(self, shard_bits: u32) -> ShardParts {
        let shard_bits = shard_bits.min(crate::shard::MAX_SHARD_BITS);
        let count = 1usize << shard_bits;
        let mut parts: Vec<Option<ShardPart>> = (0..count).map(|_| None).collect();
        for (fp, acc) in self.acc {
            parts[shard_of(fp, shard_bits)]
                .get_or_insert_with(ShardPart::default)
                .acc
                .push((fp, acc));
        }
        for (fp, name) in self.names {
            parts[shard_of(fp, shard_bits)]
                .get_or_insert_with(ShardPart::default)
                .names
                .push((fp, name));
        }
        ShardParts {
            parts,
            num_columns: self.num_columns,
        }
    }
}

/// The slice of a delta that routes to one shard.
#[derive(Debug, Default)]
pub(crate) struct ShardPart {
    pub(crate) acc: Vec<(u64, StatsAcc)>,
    pub(crate) names: Vec<(u64, String)>,
}

/// A delta split by shard, ready for a touched-shards-only merge.
#[derive(Debug)]
pub(crate) struct ShardParts {
    /// One slot per shard; `None` = the delta does not touch it.
    pub(crate) parts: Vec<Option<ShardPart>>,
    /// Columns profiled into the delta (global, not per shard).
    pub(crate) num_columns: u64,
}

/// Convenience: an owned-column wrapper for [`IndexDelta::profile`].
pub fn profile_columns(columns: &[Column], config: &IndexConfig) -> IndexDelta {
    let refs: Vec<&Column> = columns.iter().collect();
    IndexDelta::profile(&refs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{IndexConfig, PatternIndex};
    use av_corpus::{generate_lake, LakeProfile};
    use std::collections::HashMap;

    fn assert_bitwise_equal(a: &PatternIndex, b: &PatternIndex) {
        assert_eq!(a.num_columns, b.num_columns);
        assert_eq!(a.tau, b.tau);
        assert_eq!(a.len(), b.len());
        let bm: HashMap<u64, crate::PatternStats> = b.entries().collect();
        for (k, sa) in a.entries() {
            let sb = bm.get(&k).expect("pattern present in both");
            assert_eq!(sa.fpr.to_bits(), sb.fpr.to_bits(), "fpr bits for {k}");
            assert_eq!(sa.cov, sb.cov);
            assert_eq!(sa.token_len, sb.token_len);
        }
    }

    #[test]
    fn delta_merge_matches_full_rebuild_bitwise() {
        let lake_a = generate_lake(&LakeProfile::tiny(), 5);
        let lake_b = generate_lake(&LakeProfile::tiny().scaled(70), 77);
        let cols_a: Vec<&Column> = lake_a.columns().collect();
        let cols_b: Vec<&Column> = lake_b.columns().collect();
        let union: Vec<&Column> = cols_a.iter().chain(cols_b.iter()).copied().collect();
        let config = IndexConfig::default();

        let full = PatternIndex::build(&union, &config);
        let mut incremental = PatternIndex::build(&cols_a, &config);
        incremental
            .merge_delta(IndexDelta::profile(&cols_b, &config))
            .unwrap();
        assert_bitwise_equal(&full, &incremental);
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let lake_a = generate_lake(&LakeProfile::tiny().scaled(50), 1);
        let lake_b = generate_lake(&LakeProfile::tiny().scaled(60), 2);
        let cols_a: Vec<&Column> = lake_a.columns().collect();
        let cols_b: Vec<&Column> = lake_b.columns().collect();
        let config = IndexConfig::default();

        let da = IndexDelta::profile(&cols_a, &config);
        let db = IndexDelta::profile(&cols_b, &config);
        let mut ab = PatternIndex::build(&[], &config);
        ab.merge_delta(da.clone()).unwrap();
        ab.merge_delta(db.clone()).unwrap();
        let mut ba = PatternIndex::build(&[], &config);
        ba.merge_delta(db).unwrap();
        ba.merge_delta(da).unwrap();
        assert_bitwise_equal(&ab, &ba);
    }

    #[test]
    fn tau_mismatch_is_rejected() {
        let lake = generate_lake(&LakeProfile::tiny().scaled(30), 3);
        let cols: Vec<&Column> = lake.columns().collect();
        let mut index = PatternIndex::build(&cols, &IndexConfig::with_tau(13));
        let delta = IndexDelta::profile(&cols, &IndexConfig::with_tau(8));
        assert!(matches!(
            index.merge_delta(delta),
            Err(DeltaError::TauMismatch { .. })
        ));
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let lake = generate_lake(&LakeProfile::tiny().scaled(40), 9);
        let cols: Vec<&Column> = lake.columns().collect();
        let config = IndexConfig::default();
        let mut index = PatternIndex::build(&cols, &config);
        let before: Vec<(u64, crate::PatternStats)> = index.entries().collect();
        index
            .merge_delta(IndexDelta::profile(&[], &config))
            .unwrap();
        assert_eq!(index.num_columns, cols.len() as u64);
        let after: HashMap<u64, crate::PatternStats> = index.entries().collect();
        for (k, s) in before {
            assert_eq!(after[&k], s);
        }
    }
}
