//! Incremental index maintenance: profile *new* corpus columns into an
//! [`IndexDelta`] and fold it into a live [`PatternIndex`] with
//! [`PatternIndex::merge_delta`] — the "answering under updates" dataflow:
//! query-time lookups stay O(1) against the live index while the corpus
//! grows, and nothing is ever rescanned.
//!
//! Exactness: both the index and the delta keep fixed-point integer
//! impurity accumulators (see [`crate::PatternStats`]'s module docs), so
//! `build(A) ⊕ delta(B)` equals `build(A ∪ B)` bit-for-bit on every
//! statistic, for any sharding and any merge order.
//!
//! At merge time a delta [splits](IndexDelta::into_shard_parts) into
//! per-shard sub-deltas routed by fingerprint, which is what lets
//! [`PatternIndex::merge_delta`] (and the concurrent
//! [`crate::ShardedIndex`]) clone and republish **only the shards the
//! delta touches** — update cost tracks the delta, not the database.

use crate::build::{index_one_column, FastMap, IndexConfig};
use crate::persist::PersistError;
use crate::shard::shard_of;
use crate::stats::StatsAcc;
use av_corpus::Column;
use bytes::{Buf, BufMut};

#[cfg(doc)]
use crate::build::PatternIndex;

const DELTA_MAGIC: &[u8; 4] = b"AVDL";
const DELTA_VERSION: u32 = 1;

/// A profiled batch of new corpus columns, ready to merge into a live
/// [`PatternIndex`].
#[derive(Debug, Default, Clone)]
pub struct IndexDelta {
    pub(crate) acc: FastMap<StatsAcc>,
    pub(crate) names: FastMap<String>,
    pub(crate) num_columns: u64,
    pub(crate) tau: usize,
}

/// Why a delta could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was profiled under a different token-limit τ than the
    /// index was built with; their pattern populations are incomparable.
    TauMismatch {
        /// τ of the receiving index.
        index_tau: usize,
        /// τ the delta was profiled with.
        delta_tau: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::TauMismatch {
                index_tau,
                delta_tau,
            } => write!(
                f,
                "delta profiled with tau {delta_tau} cannot merge into index built with tau {index_tau}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl IndexDelta {
    /// Profile `columns` into a delta with the same map/reduce dataflow the
    /// full build uses: workers pull columns off a shared atomic cursor (a
    /// dynamic work queue, so a handful of giant columns cannot strand the
    /// other workers the way static chunking does), fold into thread-local
    /// accumulators with a per-worker reusable scratch, and merge at the
    /// end. The fixed-point accumulator merge is order-independent, so the
    /// result is bit-identical for every thread count and schedule.
    pub fn profile(columns: &[&Column], config: &IndexConfig) -> IndexDelta {
        let results: Vec<(FastMap<StatsAcc>, FastMap<String>)> =
            crate::build::run_work_queue(columns.len(), config, |queue| {
                let mut acc: FastMap<StatsAcc> = FastMap::default();
                let mut names: FastMap<String> = FastMap::default();
                let mut scratch = crate::build::ColumnScratch::default();
                while let Some(range) = queue.next_range() {
                    for col in &columns[range] {
                        index_one_column(col, config, &mut acc, &mut names, &mut scratch);
                    }
                }
                (acc, names)
            });
        let mut merged: FastMap<StatsAcc> = FastMap::default();
        let mut names: FastMap<String> = FastMap::default();
        for (shard, shard_names) in results {
            for (k, v) in shard {
                merged.entry(k).or_default().merge(&v);
            }
            names.extend(shard_names);
        }
        IndexDelta {
            acc: merged,
            names,
            num_columns: columns.len() as u64,
            tau: config.tau,
        }
    }

    /// Number of columns profiled into this delta.
    pub fn num_columns(&self) -> u64 {
        self.num_columns
    }

    /// Number of distinct patterns in this delta.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True when no patterns were profiled.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// The token-limit τ this delta was profiled with.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// How many of `2^shard_bits` fingerprint shards this delta would
    /// touch if merged into an index sharded that way — the number of
    /// shards an ingest has to clone and republish.
    pub fn touched_shards(&self, shard_bits: u32) -> usize {
        // Clamp once and route with the same value — clamping only the
        // count while routing with the raw bits would index out of range.
        let shard_bits = shard_bits.min(crate::shard::MAX_SHARD_BITS);
        let count = 1usize << shard_bits;
        let mut touched = vec![false; count];
        for fp in self.acc.keys() {
            touched[shard_of(*fp, shard_bits)] = true;
        }
        touched.iter().filter(|t| **t).count()
    }

    /// Serialize for the write-ahead log (`AVDL` v1, little-endian):
    /// header, then the accumulator entries sorted by fingerprint, then
    /// the display-name strings. [`IndexDelta::from_bytes`] restores a
    /// delta whose merge effect is bit-identical to the original's.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Sized for the whole record (header + entries + names) and built
        // straight into the returned Vec: this runs under the WAL lock on
        // every durable ingest, so reallocation and a trailing copy both
        // show up as acknowledge latency.
        let names_bytes: usize = self.names.values().map(|s| 12 + s.len()).sum();
        let mut buf: Vec<u8> = Vec::with_capacity(32 + self.acc.len() * 25 + 8 + names_bytes);
        buf.put_slice(DELTA_MAGIC);
        buf.put_u32_le(DELTA_VERSION);
        buf.put_u64_le(self.tau as u64);
        buf.put_u64_le(self.num_columns);
        let mut entries: Vec<(u64, StatsAcc)> = self.acc.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        buf.put_u64_le(entries.len() as u64);
        for (k, s) in &entries {
            buf.put_u64_le(*k);
            buf.put_u64_le(s.imp_fp);
            buf.put_u64_le(s.cols);
            buf.put_u8(s.token_len);
        }
        let mut names: Vec<(u64, &str)> =
            self.names.iter().map(|(k, s)| (*k, s.as_str())).collect();
        names.sort_unstable_by_key(|(k, _)| *k);
        buf.put_u64_le(names.len() as u64);
        for (k, s) in names {
            buf.put_u64_le(k);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        buf
    }

    /// Decode a delta serialized by [`IndexDelta::to_bytes`].
    pub fn from_bytes(mut buf: &[u8]) -> Result<IndexDelta, PersistError> {
        let err = |m: &str| PersistError::Format(m.to_string());
        if buf.remaining() < 4 || &buf[..4] != DELTA_MAGIC {
            return Err(err("bad delta magic"));
        }
        buf.advance(4);
        if buf.remaining() < 28 {
            return Err(err("truncated delta header"));
        }
        let version = buf.get_u32_le();
        if version != DELTA_VERSION {
            return Err(PersistError::Format(format!(
                "unsupported delta version {version}"
            )));
        }
        let tau = buf.get_u64_le() as usize;
        let num_columns = buf.get_u64_le();
        let n = buf.get_u64_le() as usize;
        let mut acc: FastMap<StatsAcc> = FastMap::default();
        acc.reserve(n.min(buf.remaining() / 25));
        for _ in 0..n {
            if buf.remaining() < 25 {
                return Err(err("truncated delta entries"));
            }
            let k = buf.get_u64_le();
            let imp_fp = buf.get_u64_le();
            let cols = buf.get_u64_le();
            let token_len = buf.get_u8();
            acc.insert(k, StatsAcc::from_raw(imp_fp, cols, token_len));
        }
        if buf.remaining() < 8 {
            return Err(err("missing delta name section"));
        }
        let ns = buf.get_u64_le() as usize;
        let mut names: FastMap<String> = FastMap::default();
        names.reserve(ns.min(buf.remaining() / 12));
        for _ in 0..ns {
            if buf.remaining() < 12 {
                return Err(err("truncated delta names"));
            }
            let k = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(err("truncated delta name payload"));
            }
            let s = String::from_utf8(buf[..len].to_vec())
                .map_err(|_| err("invalid utf-8 in delta name"))?;
            buf.advance(len);
            names.insert(k, s);
        }
        if buf.remaining() > 0 {
            return Err(err("trailing bytes after delta"));
        }
        Ok(IndexDelta {
            acc,
            names,
            num_columns,
            tau,
        })
    }

    /// Split into per-shard sub-deltas: entry `i` of `parts` holds the
    /// accumulators (and display names) whose fingerprints route to shard
    /// `i`, or `None` when the delta does not touch that shard.
    pub(crate) fn into_shard_parts(self, shard_bits: u32) -> ShardParts {
        let shard_bits = shard_bits.min(crate::shard::MAX_SHARD_BITS);
        let count = 1usize << shard_bits;
        let mut parts: Vec<Option<ShardPart>> = (0..count).map(|_| None).collect();
        for (fp, acc) in self.acc {
            parts[shard_of(fp, shard_bits)]
                .get_or_insert_with(ShardPart::default)
                .acc
                .push((fp, acc));
        }
        for (fp, name) in self.names {
            parts[shard_of(fp, shard_bits)]
                .get_or_insert_with(ShardPart::default)
                .names
                .push((fp, name));
        }
        ShardParts {
            parts,
            num_columns: self.num_columns,
        }
    }
}

/// The slice of a delta that routes to one shard.
#[derive(Debug, Default)]
pub(crate) struct ShardPart {
    pub(crate) acc: Vec<(u64, StatsAcc)>,
    pub(crate) names: Vec<(u64, String)>,
}

/// A delta split by shard, ready for a touched-shards-only merge.
#[derive(Debug)]
pub(crate) struct ShardParts {
    /// One slot per shard; `None` = the delta does not touch it.
    pub(crate) parts: Vec<Option<ShardPart>>,
    /// Columns profiled into the delta (global, not per shard).
    pub(crate) num_columns: u64,
}

/// Convenience: an owned-column wrapper for [`IndexDelta::profile`].
pub fn profile_columns(columns: &[Column], config: &IndexConfig) -> IndexDelta {
    let refs: Vec<&Column> = columns.iter().collect();
    IndexDelta::profile(&refs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{IndexConfig, PatternIndex};
    use av_corpus::{generate_lake, LakeProfile};
    use std::collections::HashMap;

    fn assert_bitwise_equal(a: &PatternIndex, b: &PatternIndex) {
        assert_eq!(a.num_columns, b.num_columns);
        assert_eq!(a.tau, b.tau);
        assert_eq!(a.len(), b.len());
        let bm: HashMap<u64, crate::PatternStats> = b.entries().collect();
        for (k, sa) in a.entries() {
            let sb = bm.get(&k).expect("pattern present in both");
            assert_eq!(sa.fpr.to_bits(), sb.fpr.to_bits(), "fpr bits for {k}");
            assert_eq!(sa.cov, sb.cov);
            assert_eq!(sa.token_len, sb.token_len);
        }
    }

    #[test]
    fn delta_merge_matches_full_rebuild_bitwise() {
        let lake_a = generate_lake(&LakeProfile::tiny(), 5);
        let lake_b = generate_lake(&LakeProfile::tiny().scaled(70), 77);
        let cols_a: Vec<&Column> = lake_a.columns().collect();
        let cols_b: Vec<&Column> = lake_b.columns().collect();
        let union: Vec<&Column> = cols_a.iter().chain(cols_b.iter()).copied().collect();
        let config = IndexConfig::default();

        let full = PatternIndex::build(&union, &config);
        let mut incremental = PatternIndex::build(&cols_a, &config);
        incremental
            .merge_delta(IndexDelta::profile(&cols_b, &config))
            .unwrap();
        assert_bitwise_equal(&full, &incremental);
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let lake_a = generate_lake(&LakeProfile::tiny().scaled(50), 1);
        let lake_b = generate_lake(&LakeProfile::tiny().scaled(60), 2);
        let cols_a: Vec<&Column> = lake_a.columns().collect();
        let cols_b: Vec<&Column> = lake_b.columns().collect();
        let config = IndexConfig::default();

        let da = IndexDelta::profile(&cols_a, &config);
        let db = IndexDelta::profile(&cols_b, &config);
        let mut ab = PatternIndex::build(&[], &config);
        ab.merge_delta(da.clone()).unwrap();
        ab.merge_delta(db.clone()).unwrap();
        let mut ba = PatternIndex::build(&[], &config);
        ba.merge_delta(db).unwrap();
        ba.merge_delta(da).unwrap();
        assert_bitwise_equal(&ab, &ba);
    }

    #[test]
    fn tau_mismatch_is_rejected() {
        let lake = generate_lake(&LakeProfile::tiny().scaled(30), 3);
        let cols: Vec<&Column> = lake.columns().collect();
        let mut index = PatternIndex::build(&cols, &IndexConfig::with_tau(13));
        let delta = IndexDelta::profile(&cols, &IndexConfig::with_tau(8));
        assert!(matches!(
            index.merge_delta(delta),
            Err(DeltaError::TauMismatch { .. })
        ));
    }

    #[test]
    fn delta_bytes_roundtrip_merges_identically() {
        let lake_a = generate_lake(&LakeProfile::tiny().scaled(50), 21);
        let lake_b = generate_lake(&LakeProfile::tiny().scaled(40), 22);
        let cols_a: Vec<&Column> = lake_a.columns().collect();
        let cols_b: Vec<&Column> = lake_b.columns().collect();
        let config = IndexConfig {
            keep_patterns: true,
            ..Default::default()
        };
        let delta = IndexDelta::profile(&cols_b, &config);
        let bytes = delta.to_bytes();
        let restored = IndexDelta::from_bytes(&bytes).unwrap();
        assert_eq!(restored.tau(), delta.tau());
        assert_eq!(restored.num_columns(), delta.num_columns());
        assert_eq!(restored.len(), delta.len());
        // Serialization is canonical: re-encoding is byte-stable.
        assert_eq!(restored.to_bytes(), bytes);
        // Merging the decoded delta is bit-identical to the original.
        let mut direct = PatternIndex::build(&cols_a, &config);
        direct.merge_delta(delta).unwrap();
        let mut replayed = PatternIndex::build(&cols_a, &config);
        replayed.merge_delta(restored).unwrap();
        assert_eq!(direct.to_bytes(), replayed.to_bytes());
    }

    #[test]
    fn corrupt_delta_bytes_are_rejected() {
        assert!(IndexDelta::from_bytes(b"nope").is_err());
        let lake = generate_lake(&LakeProfile::tiny().scaled(30), 4);
        let cols: Vec<&Column> = lake.columns().collect();
        let bytes = IndexDelta::profile(&cols, &IndexConfig::default()).to_bytes();
        assert!(IndexDelta::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut extra = bytes.clone();
        extra.push(7);
        assert!(IndexDelta::from_bytes(&extra).is_err());
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let lake = generate_lake(&LakeProfile::tiny().scaled(40), 9);
        let cols: Vec<&Column> = lake.columns().collect();
        let config = IndexConfig::default();
        let mut index = PatternIndex::build(&cols, &config);
        let before: Vec<(u64, crate::PatternStats)> = index.entries().collect();
        index
            .merge_delta(IndexDelta::profile(&[], &config))
            .unwrap();
        assert_eq!(index.num_columns, cols.len() as u64);
        let after: HashMap<u64, crate::PatternStats> = index.entries().collect();
        for (k, s) in before {
            assert_eq!(after[&k], s);
        }
    }
}
