//! # av-index — the Auto-Validate offline index (§2.4)
//!
//! A naive FMDV implementation would scan the whole corpus `T` to compute
//! `FPR_T(h)` and `Cov_T(h)` for every hypothesis — hours per query. The
//! offline stage instead scans `T` once, enumerates `P(D)` for every column
//! `D` (token-limit τ keeps this tractable; vertical cuts recompose wide
//! columns at query time, §3), and aggregates per-pattern impurity and
//! coverage into a [`PatternIndex`]: fingerprint → `(FPR_T, Cov_T)`.
//!
//! The build is a shard-and-merge map/reduce over OS threads (the paper
//! uses a production Map-Reduce cluster — same dataflow). Indexes persist
//! to a compact binary format and are orders of magnitude smaller than the
//! corpus they summarize.
//!
//! For long-running deployments the index also supports **incremental
//! maintenance**: profile new columns into an [`IndexDelta`] and
//! [`PatternIndex::merge_delta`] it into the live index — bit-for-bit
//! identical to a from-scratch rebuild on the union corpus, at the cost of
//! scanning only the new columns.

#![warn(missing_docs)]

mod build;
mod delta;
mod persist;
mod stats;

pub use build::{scan_corpus_fpr, IdentityHasher, IndexConfig, PatternIndex};
pub use delta::{profile_columns, DeltaError, IndexDelta};
pub use persist::PersistError;
pub use stats::PatternStats;
