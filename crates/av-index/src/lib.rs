//! # av-index — the Auto-Validate offline index (§2.4)
//!
//! A naive FMDV implementation would scan the whole corpus `T` to compute
//! `FPR_T(h)` and `Cov_T(h)` for every hypothesis — hours per query. The
//! offline stage instead scans `T` once, enumerates `P(D)` for every column
//! `D` (token-limit τ keeps this tractable; vertical cuts recompose wide
//! columns at query time, §3), and aggregates per-pattern impurity and
//! coverage into a [`PatternIndex`]: fingerprint → `(FPR_T, Cov_T)`.
//!
//! The build is a shard-and-merge map/reduce over OS threads (the paper
//! uses a production Map-Reduce cluster — same dataflow). Indexes persist
//! to a compact binary format (AVIX v4, a per-shard directory; v3
//! single-shard images still load) and are orders of magnitude smaller
//! than the corpus they summarize.
//!
//! ## Sharded copy-on-write maintenance
//!
//! The index is partitioned into a power-of-two number of fingerprint
//! [shards](IndexShard), each behind an `Arc`. For long-running
//! deployments that makes **incremental maintenance O(delta), not
//! O(index)**: profile new columns into an [`IndexDelta`], and
//! [`PatternIndex::merge_delta`] splits it into per-shard sub-deltas and
//! clones/rebuilds *only the shards the delta touches* — bit-for-bit
//! identical to a from-scratch rebuild on the union corpus, while every
//! untouched shard is shared by pointer with the pre-merge index.
//!
//! Concurrent serving goes through [`ShardedIndex`]: readers take
//! wait-free, internally consistent `Arc<PatternIndex>` epoch snapshots;
//! ingests touching disjoint shards run their merge work in parallel and
//! publish atomically (see [`shard`]).

mod build;
mod delta;
mod persist;
pub mod shard;
mod stats;

pub use build::{scan_corpus_fpr, IdentityHasher, IndexConfig, PatternIndex};
pub use delta::{profile_columns, DeltaError, IndexDelta};
pub use persist::PersistError;
pub use shard::{IndexShard, ShardMerge, ShardedIndex};
pub use stats::PatternStats;
