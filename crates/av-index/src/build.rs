//! Offline index construction (§2.4): one scan over the corpus, enumerating
//! `P(D)` per column and aggregating impurity/coverage per pattern.
//!
//! The paper runs this as a Map-Reduce job on a production cluster; here it
//! is a shard-and-merge build over OS threads — same dataflow (map: pattern
//! enumeration per column, reduce: per-pattern aggregation), laptop scale.
//! The reduce side lands in fingerprint-routed [`IndexShard`]s (see
//! [`crate::shard`]), which is what later makes incremental ingest
//! O(touched shards) instead of O(index).

use crate::delta::DeltaError;
use crate::shard::{shard_of, IndexShard, DEFAULT_SHARD_BITS, MAX_SHARD_BITS};
use crate::stats::{PatternStats, StatsAcc};
use av_corpus::Column;
use av_pattern::{stream_column_profile, EnumScratch, Pattern, PatternConfig};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Identity hasher: index keys are already 64-bit FNV fingerprints, so
/// rehashing them would be wasted work.
#[derive(Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher only accepts u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

pub(crate) type FastMap<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

/// The shared dynamic work queue of the map side: workers claim
/// `queue_batch`-sized column ranges off one atomic cursor, so a handful
/// of giant columns cannot strand the other workers the way static
/// chunking does.
pub(crate) struct WorkQueue {
    cursor: AtomicUsize,
    batch: usize,
    len: usize,
}

impl WorkQueue {
    /// Claim the next range of column indices, or `None` when drained.
    pub(crate) fn next_range(&self) -> Option<std::ops::Range<usize>> {
        let start = self.cursor.fetch_add(self.batch, Ordering::Relaxed);
        if start >= self.len {
            None
        } else {
            Some(start..self.len.min(start + self.batch))
        }
    }
}

/// Run `worker` on `min(num_threads, len)` scoped threads sharing one
/// [`WorkQueue`] over `len` columns; returns the per-worker results for
/// an order-independent reduce. Both the offline build/delta profiling
/// and the no-index corpus scan run on this scaffolding, so their
/// scheduling semantics can never diverge.
pub(crate) fn run_work_queue<T, F>(len: usize, config: &IndexConfig, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(&WorkQueue) -> T + Sync,
{
    let workers = config.num_threads.max(1).min(len.max(1));
    let queue = WorkQueue {
        cursor: AtomicUsize::new(0),
        batch: config.queue_batch.max(1),
        len,
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| worker(&queue)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("index worker panicked"))
            .collect()
    })
}

/// Configuration of the offline build.
///
/// Threading model: columns are distributed to `num_threads` workers
/// through a shared atomic cursor (a dynamic work queue), each worker
/// claiming `queue_batch` columns at a time. Every worker folds into its
/// own thread-local accumulator map and carries one reusable column
/// scratch (enumeration bitset pool + per-column fingerprint map), so
/// steady-state profiling performs no per-column allocation. Because the
/// fixed-point impurity accumulators merge with exact associativity and
/// commutativity, the built index is bit-for-bit identical for every
/// thread count, batch size, and scheduling order.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Pattern-generation knobs. For indexing, `max_patterns` bounds the
    /// patterns enumerated per column (the paper's coverage-threshold and
    /// τ-limit mechanisms keep `P(D)` tractable).
    pub pattern: PatternConfig,
    /// Token-limit τ: values with more tokens are skipped (§2.4) — safe
    /// because vertical cuts recompose wide columns at query time (§3).
    pub tau: usize,
    /// Worker threads for the work-queue build.
    pub num_threads: usize,
    /// Columns a worker claims per queue pop. `1` (the default) gives the
    /// best balance under skewed column sizes; raise it only when columns
    /// are uniformly tiny and cursor contention ever shows up in profiles.
    pub queue_batch: usize,
    /// log₂ of the shard count the index is partitioned into (clamped to
    /// 12). More shards mean a finer copy-on-write granularity for
    /// [`PatternIndex::merge_delta`] — a small delta republishes a smaller
    /// fraction of the index — at a small per-shard fixed cost. The shard
    /// a pattern lands in depends only on its fingerprint, so the indexed
    /// *statistics* are identical for every value of this knob.
    pub shard_bits: u32,
    /// Keep pattern display strings (needed only for head-pattern analyses
    /// like Fig. 3 / Fig. 13b labels; costs memory on big corpora).
    pub keep_patterns: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            pattern: PatternConfig {
                max_patterns: 512,
                ..Default::default()
            },
            tau: 13,
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_batch: 1,
            shard_bits: DEFAULT_SHARD_BITS,
            keep_patterns: false,
        }
    }
}

impl IndexConfig {
    /// Config with a specific τ.
    pub fn with_tau(tau: usize) -> IndexConfig {
        IndexConfig {
            tau,
            ..Default::default()
        }
    }
}

/// The offline index: pattern fingerprint → pre-computed `(FPR_T, Cov_T)`.
///
/// Orders of magnitude smaller than the corpus (the paper: 1 TB corpus →
/// < 1 GB index); lookups are O(1), which is what turns hours-long corpus
/// scans into sub-100ms online inference (Fig. 14).
///
/// Internally the index is partitioned into 2^`shard_bits` fingerprint
/// shards, each behind an [`Arc`] (see [`crate::shard`]). Cloning an index
/// is therefore cheap — shard pointers, not shard data — and
/// [`PatternIndex::merge_delta`] is **copy-on-write at shard granularity**:
/// only shards the delta touches are cloned and rebuilt, every other shard
/// stays shared with the pre-merge clone. Statistics are kept as raw
/// fixed-point accumulators, so an incremental [`crate::IndexDelta`] merge
/// is bit-for-bit identical to a from-scratch rebuild on the union corpus.
#[derive(Debug, Clone)]
pub struct PatternIndex {
    pub(crate) shards: Box<[Arc<IndexShard>]>,
    pub(crate) shard_bits: u32,
    /// Number of corpus columns scanned.
    pub num_columns: u64,
    /// The τ used at build time.
    pub tau: usize,
}

impl Default for PatternIndex {
    fn default() -> Self {
        PatternIndex::with_capacity(0, 0, 0, DEFAULT_SHARD_BITS)
    }
}

impl PatternIndex {
    /// Build the index over `columns` with `config`.
    ///
    /// Implemented as `empty ∘ merge_delta(profile)`, so a full build and
    /// an incremental sequence of delta merges run the exact same
    /// aggregation code.
    pub fn build(columns: &[&Column], config: &IndexConfig) -> PatternIndex {
        let mut index = PatternIndex::with_capacity(0, 0, config.tau, config.shard_bits);
        index
            .merge_delta(crate::IndexDelta::profile(columns, config))
            .expect("freshly built delta shares the index tau");
        index
    }

    /// Pre-sized empty index (used by deserialization).
    pub(crate) fn with_capacity(
        n: usize,
        num_columns: u64,
        tau: usize,
        shard_bits: u32,
    ) -> PatternIndex {
        let shard_bits = shard_bits.min(MAX_SHARD_BITS);
        let count = 1usize << shard_bits;
        let per_shard = n / count;
        let shards = (0..count)
            .map(|_| {
                Arc::new(IndexShard {
                    map: FastMap::with_capacity_and_hasher(per_shard, Default::default()),
                    patterns: FastMap::default(),
                    version: 0,
                })
            })
            .collect();
        PatternIndex {
            shards,
            shard_bits,
            num_columns,
            tau,
        }
    }

    /// Assemble an index from already-built shards (the concurrent
    /// [`crate::ShardedIndex`] publishing a new epoch).
    pub(crate) fn from_parts(
        shards: Vec<Arc<IndexShard>>,
        shard_bits: u32,
        num_columns: u64,
        tau: usize,
    ) -> PatternIndex {
        debug_assert_eq!(shards.len(), 1usize << shard_bits);
        PatternIndex {
            shards: shards.into(),
            shard_bits,
            num_columns,
            tau,
        }
    }

    /// Pre-size one shard's map for `n` upcoming inserts (deserialization
    /// reads each section's entry count before its entries, so the shard
    /// map can grow once instead of through the doubling sequence).
    pub(crate) fn reserve_shard(&mut self, shard: usize, n: usize) {
        Arc::make_mut(&mut self.shards[shard]).map.reserve(n);
    }

    /// Insert a raw accumulator entry (used by deserialization).
    pub(crate) fn insert_raw(&mut self, fingerprint: u64, acc: StatsAcc) {
        let i = shard_of(fingerprint, self.shard_bits);
        Arc::make_mut(&mut self.shards[i])
            .map
            .insert(fingerprint, acc);
    }

    /// Fold one covering column's impurity for a fingerprint (tests'
    /// materializing reference build).
    #[cfg(test)]
    pub(crate) fn fold_impurity(&mut self, fingerprint: u64, impurity: f64, token_len: u8) {
        let i = shard_of(fingerprint, self.shard_bits);
        Arc::make_mut(&mut self.shards[i])
            .map
            .entry(fingerprint)
            .or_default()
            .add_impurity(impurity, token_len);
    }

    /// Attach a display string to a fingerprint (used by deserialization).
    pub(crate) fn insert_pattern_string(&mut self, fingerprint: u64, s: String) {
        let i = shard_of(fingerprint, self.shard_bits);
        Arc::make_mut(&mut self.shards[i])
            .patterns
            .entry(fingerprint)
            .or_insert(s);
    }

    /// Merge an incremental delta (profiled over *new* corpus columns)
    /// into this index. Because both sides keep exact integer
    /// accumulators, the result is bit-for-bit identical to rebuilding
    /// from scratch over the union corpus — no stop-the-world rescan.
    ///
    /// The delta splits into per-shard sub-deltas and only the touched
    /// shards are cloned (when shared) and rebuilt: merging a small delta
    /// into a large index costs O(delta + touched shard data), not
    /// O(index). Untouched shards keep their `Arc` identity, so clones of
    /// the pre-merge index keep serving unchanged.
    ///
    /// Fails when the delta was profiled with a different token-limit τ
    /// (its patterns would be incomparable with the index's population).
    pub fn merge_delta(&mut self, delta: crate::IndexDelta) -> Result<(), DeltaError> {
        if delta.tau() != self.tau {
            return Err(DeltaError::TauMismatch {
                index_tau: self.tau,
                delta_tau: delta.tau(),
            });
        }
        let parts = delta.into_shard_parts(self.shard_bits);
        for (i, part) in parts.parts.into_iter().enumerate() {
            if let Some(part) = part {
                Arc::make_mut(&mut self.shards[i]).apply(part);
            }
        }
        self.num_columns += parts.num_columns;
        Ok(())
    }

    /// Redistribute the index over a different shard count. Statistics are
    /// unchanged (shard routing is pure fingerprint arithmetic); shard
    /// versions restart at zero. Used when a persisted image (e.g. a v3
    /// single-shard AVIX file) is loaded into a differently-sharded
    /// deployment.
    pub fn reshard(self, shard_bits: u32) -> PatternIndex {
        let shard_bits = shard_bits.min(MAX_SHARD_BITS);
        if shard_bits == self.shard_bits {
            return self;
        }
        let mut next =
            PatternIndex::with_capacity(self.len(), self.num_columns, self.tau, shard_bits);
        for shard in self.shards.iter() {
            for (k, v) in shard.map.iter() {
                next.insert_raw(*k, *v);
            }
            for (k, s) in shard.patterns.iter() {
                next.insert_pattern_string(*k, s.clone());
            }
        }
        next
    }

    /// Number of shards the index is partitioned into (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// log₂ of [`PatternIndex::shard_count`].
    pub fn shard_bits(&self) -> u32 {
        self.shard_bits
    }

    /// The shards themselves (inspection/tests; shard data is opaque).
    pub fn shards(&self) -> &[Arc<IndexShard>] {
        &self.shards
    }

    /// Per-shard merge counters: entry `i` is how many delta merges have
    /// touched shard `i` since this index was built or loaded. An ingest
    /// that claims O(touched-shards) work must leave every other entry —
    /// and the underlying shard allocation — unchanged.
    pub fn shard_versions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.version).collect()
    }

    /// Which shard a fingerprint routes to.
    pub fn shard_of_fingerprint(&self, fingerprint: u64) -> usize {
        shard_of(fingerprint, self.shard_bits)
    }

    /// Look up pre-computed stats for a pattern.
    pub fn lookup(&self, pattern: &Pattern) -> Option<PatternStats> {
        self.lookup_fingerprint(pattern.fingerprint())
    }

    /// Look up pre-computed stats by pattern fingerprint: route to the
    /// fingerprint's shard, then one identity-hash probe inside it.
    /// Inference callers that stream enumeration
    /// (`CoarseGroup::for_each_pattern`) already hold the fingerprint, so
    /// this skips re-hashing the token sequence.
    pub fn lookup_fingerprint(&self, fingerprint: u64) -> Option<PatternStats> {
        self.shards[shard_of(fingerprint, self.shard_bits)]
            .map
            .get(&fingerprint)
            .map(|a| a.finish())
    }

    /// `FPR_T(p)`, or `None` when the pattern never occurred in the corpus.
    pub fn fpr(&self, pattern: &Pattern) -> Option<f64> {
        self.lookup(pattern).map(|s| s.fpr)
    }

    /// `Cov_T(p)` (0 when absent).
    pub fn cov(&self, pattern: &Pattern) -> u64 {
        self.lookup(pattern).map(|s| s.cov).unwrap_or(0)
    }

    /// Number of distinct patterns indexed.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.len()).sum()
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.map.is_empty())
    }

    /// Iterate over `(fingerprint, stats)` pairs, shard by shard.
    pub fn entries(&self) -> impl Iterator<Item = (u64, PatternStats)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.map.iter().map(|(k, v)| (*k, v.finish())))
    }

    /// Display string for a fingerprint (only in `keep_patterns` builds).
    pub fn pattern_string(&self, fingerprint: u64) -> Option<&str> {
        self.shards[shard_of(fingerprint, self.shard_bits)]
            .patterns
            .get(&fingerprint)
            .map(|s| s.as_str())
    }

    /// Histogram of patterns by token length (Fig. 13a).
    pub fn token_length_histogram(&self) -> Vec<(usize, u64)> {
        let mut hist: HashMap<usize, u64> = HashMap::new();
        for shard in self.shards.iter() {
            for stats in shard.map.values() {
                *hist.entry(stats.token_len as usize).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(usize, u64)> = hist.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Histogram of patterns by coverage (Fig. 13b): how many patterns are
    /// followed by exactly `cov` columns, for `cov` in `[1, max_cov]`;
    /// the final bucket aggregates everything above.
    pub fn coverage_histogram(&self, max_cov: u64) -> Vec<(u64, u64)> {
        let mut hist: HashMap<u64, u64> = HashMap::new();
        for shard in self.shards.iter() {
            for stats in shard.map.values() {
                let bucket = stats.cols.min(max_cov);
                *hist.entry(bucket).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(u64, u64)> = hist.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// The "head" domain patterns (Fig. 3-style analysis): high coverage,
    /// low FPR, sorted by coverage descending. Requires `keep_patterns`.
    pub fn head_patterns(&self, min_cov: u64, max_fpr: f64) -> Vec<(String, PatternStats)> {
        let mut out: Vec<(String, PatternStats)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .map
                    .iter()
                    .map(|(k, a)| (k, a.finish()))
                    .filter(|(_, s)| s.cov >= min_cov && s.fpr <= max_fpr)
                    .filter_map(|(k, s)| shard.patterns.get(k).map(|p| (p.clone(), s)))
            })
            .collect();
        out.sort_by(|a, b| b.1.cov.cmp(&a.1.cov).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Per-column matched-fraction accumulator: the same pattern can be
/// emitted by several coarse groups of one column, and a column counts at
/// most once toward a pattern's coverage, so contributions are merged by
/// fingerprint before they fold into the [`StatsAcc`] shard map.
#[derive(Debug, Clone, Copy)]
struct FracAcc {
    frac: f64,
    token_len: u8,
}

/// Reusable per-worker scratch for column indexing: the enumeration DFS
/// pool plus the per-column fingerprint → fraction map. Both keep their
/// capacity across columns, so a worker's steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct ColumnScratch {
    enumeration: EnumScratch,
    frac: FastMap<FracAcc>,
}

/// Index one column: stream `P(D)` as `(fingerprint, support, len)`
/// triples — no `Pattern` is materialized — merge per-column fractions by
/// fingerprint, and fold into the shard accumulator. Display strings are
/// rendered only under `keep_patterns`, and only for first-seen
/// fingerprints.
pub(crate) fn index_one_column(
    col: &Column,
    config: &IndexConfig,
    acc: &mut FastMap<StatsAcc>,
    names: &mut FastMap<String>,
    scratch: &mut ColumnScratch,
) {
    let ColumnScratch { enumeration, frac } = scratch;
    frac.clear();
    stream_column_profile(
        &col.values,
        &config.pattern,
        config.tau,
        enumeration,
        |sp, contribution| {
            frac.entry(sp.fingerprint)
                .or_insert(FracAcc {
                    frac: 0.0,
                    token_len: sp.token_len.min(255) as u8,
                })
                .frac += contribution;
            if config.keep_patterns {
                names.entry(sp.fingerprint).or_insert_with(|| sp.display());
            }
        },
    );
    for (fp, e) in frac.iter() {
        acc.entry(*fp)
            .or_default()
            .add_impurity(1.0 - e.frac, e.token_len);
    }
}

/// Scan-based FPR/coverage computation **without** an index — the paper's
/// "FMDV (no-index)" reference point in Fig. 14. Returns `(fpr, cov)` for
/// each requested pattern by profiling every corpus column on the fly,
/// streaming fingerprints against the probe set (no enumerated pattern is
/// ever materialized).
///
/// The scan fans out over `config.num_threads` workers with the same
/// dynamic work queue the index build uses; each worker folds per-probe
/// accumulator shards that merge exactly at the end, so the result is
/// bit-identical to a sequential scan for every thread count.
pub fn scan_corpus_fpr(
    columns: &[&Column],
    patterns: &[Pattern],
    config: &IndexConfig,
) -> Vec<(f64, u64)> {
    let want: HashMap<u64, usize> = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| (p.fingerprint(), i))
        .collect();
    let per_worker: Vec<Vec<StatsAcc>> = run_work_queue(columns.len(), config, |queue| {
        let mut accs: Vec<StatsAcc> = vec![StatsAcc::default(); patterns.len()];
        let mut scratch = EnumScratch::default();
        let mut col_frac: Vec<f64> = vec![0.0; patterns.len()];
        let mut seen: Vec<bool> = vec![false; patterns.len()];
        let mut hit: Vec<usize> = Vec::with_capacity(patterns.len());
        while let Some(range) = queue.next_range() {
            for col in &columns[range] {
                stream_column_profile(
                    &col.values,
                    &config.pattern,
                    config.tau,
                    &mut scratch,
                    |sp, contribution| {
                        if let Some(&i) = want.get(&sp.fingerprint) {
                            if !seen[i] {
                                seen[i] = true;
                                hit.push(i);
                            }
                            col_frac[i] += contribution;
                        }
                    },
                );
                for &i in &hit {
                    accs[i].add_impurity(1.0 - col_frac[i], patterns[i].len().min(255) as u8);
                    col_frac[i] = 0.0;
                    seen[i] = false;
                }
                hit.clear();
            }
        }
        accs
    });
    let mut merged: Vec<StatsAcc> = vec![StatsAcc::default(); patterns.len()];
    for accs in per_worker {
        for (m, a) in merged.iter_mut().zip(&accs) {
            m.merge(a);
        }
    }
    merged.iter().map(|a| (a.finish().fpr, a.cols)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, LakeProfile};
    use av_pattern::parse;

    fn tiny_index() -> (av_corpus::Corpus, PatternIndex) {
        let corpus = generate_lake(&LakeProfile::tiny(), 42);
        let cols: Vec<&Column> = corpus.columns().collect();
        let index = PatternIndex::build(&cols, &IndexConfig::default());
        // Corpus must outlive nothing (index owns its data); return both.
        drop(cols);
        (corpus, index)
    }

    #[test]
    fn build_indexes_popular_domains() {
        let (_corpus, index) = tiny_index();
        assert!(index.len() > 1000, "only {} patterns", index.len());
        // The GUID domain pattern must be present with low FPR.
        let guid = parse("<alnum>{8}-<alnum>{4}-<alnum>{4}-<alnum>{4}-<alnum>{12}").unwrap();
        let stats = index.lookup(&guid);
        if let Some(s) = stats {
            assert!(s.fpr < 0.2, "guid fpr {}", s.fpr);
            assert!(s.cov >= 1);
        }
        // The trivial pattern is never indexed.
        let trivial = av_pattern::Pattern::new(vec![av_pattern::Token::AnyPlus]);
        assert!(index.lookup(&trivial).is_none());
    }

    #[test]
    fn popular_pattern_has_high_coverage() {
        let (corpus, index) = tiny_index();
        // Count machine columns of the ipv4 domain in the corpus.
        let ip_cols = corpus
            .columns()
            .filter(|c| c.meta.domain.as_deref() == Some("ipv4"))
            .count() as u64;
        if ip_cols >= 2 {
            let p = parse("<digit>+.<digit>+.<digit>+.<digit>+").unwrap();
            let cov = index.cov(&p);
            assert!(
                cov >= ip_cols,
                "ipv4 pattern covers {cov} columns, expected at least {ip_cols}"
            );
        }
    }

    #[test]
    fn thread_count_and_batch_size_do_not_change_bytes() {
        let corpus = generate_lake(&LakeProfile::tiny(), 9);
        let cols: Vec<&Column> = corpus.columns().collect();
        let reference = PatternIndex::build(
            &cols,
            &IndexConfig {
                num_threads: 1,
                ..Default::default()
            },
        )
        .to_bytes();
        for (threads, batch) in [(4usize, 1usize), (4, 7), (3, 100), (64, 2)] {
            let built = PatternIndex::build(
                &cols,
                &IndexConfig {
                    num_threads: threads,
                    queue_batch: batch,
                    ..Default::default()
                },
            );
            assert_eq!(
                built.to_bytes(),
                reference,
                "threads={threads} batch={batch}"
            );
        }
    }

    /// Shard routing is pure fingerprint arithmetic, so the shard count
    /// must never change the indexed statistics — only the partitioning.
    #[test]
    fn shard_count_does_not_change_statistics() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(80), 12);
        let cols: Vec<&Column> = corpus.columns().collect();
        let reference = PatternIndex::build(
            &cols,
            &IndexConfig {
                shard_bits: 0,
                ..Default::default()
            },
        );
        let want: std::collections::HashMap<u64, PatternStats> = reference.entries().collect();
        for shard_bits in [1u32, 4, 6, 10] {
            let built = PatternIndex::build(
                &cols,
                &IndexConfig {
                    shard_bits,
                    ..Default::default()
                },
            );
            assert_eq!(built.shard_count(), 1 << shard_bits);
            assert_eq!(built.len(), reference.len(), "bits={shard_bits}");
            for (k, s) in built.entries() {
                let r = want.get(&k).expect("same pattern set");
                assert_eq!(s.fpr.to_bits(), r.fpr.to_bits(), "bits={shard_bits}");
                assert_eq!(s.cov, r.cov);
                // Entry really lives in the shard its fingerprint routes to.
                assert!(built.shards()[built.shard_of_fingerprint(k)]
                    .map
                    .contains_key(&k));
            }
            // Resharding back to one shard reproduces the reference bytes.
            assert_eq!(built.reshard(0).to_bytes(), reference.to_bytes());
        }
    }

    /// The fold-direct streaming build must persist to bytes identical to
    /// the materializing reference: profile each column into
    /// `(Pattern, matched_frac)` pairs, merge per column by pattern, fold
    /// with `add_impurity` — the pre-streaming dataflow.
    #[test]
    fn fold_direct_build_matches_materializing_reference() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(150), 7);
        let cols: Vec<&Column> = corpus.columns().collect();
        for keep_patterns in [false, true] {
            let config = IndexConfig {
                keep_patterns,
                ..Default::default()
            };
            let built = PatternIndex::build(&cols, &config);
            let mut reference = PatternIndex::with_capacity(0, 0, config.tau, config.shard_bits);
            for col in &cols {
                for (pattern, frac) in
                    av_pattern::column_pattern_profile(&col.values, &config.pattern, config.tau)
                {
                    let fp = pattern.fingerprint();
                    reference.fold_impurity(fp, 1.0 - frac, pattern.len().min(255) as u8);
                    if keep_patterns {
                        reference.insert_pattern_string(fp, pattern.to_string());
                    }
                }
            }
            reference.num_columns = cols.len() as u64;
            assert_eq!(
                built.to_bytes(),
                reference.to_bytes(),
                "keep_patterns={keep_patterns}"
            );
        }
    }

    #[test]
    fn scan_agrees_with_index() {
        let corpus = generate_lake(&LakeProfile::tiny(), 4);
        let cols: Vec<&Column> = corpus.columns().collect();
        let config = IndexConfig::default();
        let index = PatternIndex::build(&cols, &config);
        let probes: Vec<Pattern> = vec![
            parse("<digit>+.<digit>+.<digit>+.<digit>+").unwrap(),
            parse("<letter>{3} <digit>{2} <digit>{4}").unwrap(),
            parse("ZZZ-does-not-exist").unwrap(),
        ];
        let scanned = scan_corpus_fpr(&cols, &probes, &config);
        for (p, (fpr, cov)) in probes.iter().zip(&scanned) {
            let idx = index.lookup(p);
            match idx {
                Some(s) => {
                    assert!((s.fpr - fpr).abs() < 1e-9, "{p}");
                    assert_eq!(s.cov, *cov, "{p}");
                }
                None => assert_eq!(*cov, 0, "{p}"),
            }
        }
    }

    /// The fanned-out scan must be bit-identical for every worker count.
    #[test]
    fn scan_is_thread_count_invariant() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(60), 14);
        let cols: Vec<&Column> = corpus.columns().collect();
        let probes: Vec<Pattern> = vec![
            parse("<digit>+.<digit>+.<digit>+.<digit>+").unwrap(),
            parse("<alnum>{8}-<alnum>{4}-<alnum>{4}-<alnum>{4}-<alnum>{12}").unwrap(),
            parse("<digit>{2}:<digit>{2}:<digit>{2}").unwrap(),
        ];
        let reference = scan_corpus_fpr(
            &cols,
            &probes,
            &IndexConfig {
                num_threads: 1,
                ..Default::default()
            },
        );
        for threads in [2usize, 4, 16] {
            let scanned = scan_corpus_fpr(
                &cols,
                &probes,
                &IndexConfig {
                    num_threads: threads,
                    ..Default::default()
                },
            );
            for ((f1, c1), (f2, c2)) in reference.iter().zip(&scanned) {
                assert_eq!(f1.to_bits(), f2.to_bits(), "threads={threads}");
                assert_eq!(c1, c2, "threads={threads}");
            }
        }
    }

    #[test]
    fn histograms_are_consistent() {
        let (_corpus, index) = tiny_index();
        let by_len = index.token_length_histogram();
        let total: u64 = by_len.iter().map(|(_, c)| c).sum();
        assert_eq!(total, index.len() as u64);
        let by_cov = index.coverage_histogram(50);
        let total2: u64 = by_cov.iter().map(|(_, c)| c).sum();
        assert_eq!(total2, index.len() as u64);
        assert!(by_cov.iter().all(|(cov, _)| *cov <= 50));
    }

    #[test]
    fn keep_patterns_enables_head_analysis() {
        let corpus = generate_lake(&LakeProfile::tiny(), 21);
        let cols: Vec<&Column> = corpus.columns().collect();
        let config = IndexConfig {
            keep_patterns: true,
            ..Default::default()
        };
        let index = PatternIndex::build(&cols, &config);
        let heads = index.head_patterns(3, 0.05);
        assert!(!heads.is_empty());
        // Head patterns are sorted by coverage descending.
        for w in heads.windows(2) {
            assert!(w[0].1.cov >= w[1].1.cov);
        }
    }
}
