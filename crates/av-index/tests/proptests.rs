//! Property-based tests for index invariants on arbitrary synthetic columns.

use av_corpus::{Column, ColumnMeta};
use av_index::{IndexConfig, PatternIndex};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9:/._-]{0,12}").expect("valid regex")
}

fn column(id: usize, values: Vec<String>) -> Column {
    Column {
        name: format!("c{id}"),
        values,
        meta: ColumnMeta::machine("prop", None),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any corpus: FPRs live in [0,1], coverage never exceeds the
    /// column count, token lengths are consistent, and serialization
    /// round-trips.
    #[test]
    fn index_invariants(
        cols in proptest::collection::vec(
            proptest::collection::vec(value(), 1..20),
            1..12,
        )
    ) {
        let columns: Vec<Column> = cols
            .into_iter()
            .enumerate()
            .map(|(i, vals)| column(i, vals))
            .collect();
        let refs: Vec<&Column> = columns.iter().collect();
        let index = PatternIndex::build(&refs, &IndexConfig::default());
        prop_assert_eq!(index.num_columns, refs.len() as u64);
        for (_, stats) in index.entries() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.fpr), "fpr {}", stats.fpr);
            prop_assert!(stats.cov >= 1);
            prop_assert!(stats.cov <= index.num_columns);
        }
        let restored = PatternIndex::from_bytes(&index.to_bytes()).expect("roundtrip");
        prop_assert_eq!(restored.len(), index.len());
    }

    /// For any corpus and any shard count: the indexed statistics are
    /// identical to the single-shard build, the persisted image
    /// round-trips, and resharding back to one shard reproduces the
    /// single-shard bytes exactly.
    #[test]
    fn sharding_is_transparent(
        cols in proptest::collection::vec(
            proptest::collection::vec(value(), 1..15),
            1..8,
        ),
        shard_bits in 0u32..=8,
    ) {
        let columns: Vec<Column> = cols
            .into_iter()
            .enumerate()
            .map(|(i, vals)| column(i, vals))
            .collect();
        let refs: Vec<&Column> = columns.iter().collect();
        let flat = PatternIndex::build(&refs, &IndexConfig { shard_bits: 0, ..Default::default() });
        let sharded = PatternIndex::build(&refs, &IndexConfig { shard_bits, ..Default::default() });
        prop_assert_eq!(sharded.shard_count(), 1usize << shard_bits);
        prop_assert_eq!(sharded.len(), flat.len());
        let want: std::collections::HashMap<u64, av_index::PatternStats> = flat.entries().collect();
        for (k, s) in sharded.entries() {
            let f = want.get(&k).expect("same pattern set");
            prop_assert_eq!(s.fpr.to_bits(), f.fpr.to_bits());
            prop_assert_eq!(s.cov, f.cov);
        }
        let restored = PatternIndex::from_bytes(&sharded.to_bytes()).expect("roundtrip");
        prop_assert_eq!(restored.to_bytes(), sharded.to_bytes());
        prop_assert_eq!(restored.reshard(0).to_bytes(), flat.to_bytes());
    }

    /// Duplicating every column doubles coverage counts but keeps FPRs.
    #[test]
    fn duplication_scales_coverage_not_fpr(
        cols in proptest::collection::vec(
            proptest::collection::vec(value(), 2..12),
            1..6,
        )
    ) {
        let single: Vec<Column> = cols
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| column(i, v))
            .collect();
        let doubled: Vec<Column> = cols
            .iter()
            .cloned()
            .chain(cols.iter().cloned())
            .enumerate()
            .map(|(i, v)| column(i, v))
            .collect();
        let idx1 = PatternIndex::build(&single.iter().collect::<Vec<_>>(), &IndexConfig::default());
        let idx2 = PatternIndex::build(&doubled.iter().collect::<Vec<_>>(), &IndexConfig::default());
        prop_assert_eq!(idx1.len(), idx2.len(), "same pattern set");
        let map2: std::collections::HashMap<u64, av_index::PatternStats> = idx2.entries().collect();
        for (k, s1) in idx1.entries() {
            let s2 = map2.get(&k).expect("pattern survives duplication");
            prop_assert_eq!(s2.cov, s1.cov * 2, "coverage doubles");
            prop_assert!((s2.fpr - s1.fpr).abs() < 1e-9, "fpr invariant");
        }
    }

    /// The patterns the offline build indexes agree with the compiled
    /// matcher the online path runs: for every indexed pattern, lowering it
    /// to a [`av_pattern::CompiledPattern`] and matching the corpus values
    /// byte-level returns exactly the reference matcher's verdicts (and the
    /// compiled round-trip preserves the index key). This pins the index's
    /// pattern population to the production matcher — a lookup hit means
    /// the compiled rule really accepts what the index thinks it accepts.
    #[test]
    fn indexed_patterns_agree_with_compiled_matcher(
        cols in proptest::collection::vec(
            proptest::collection::vec(value(), 1..10),
            1..6,
        )
    ) {
        let columns: Vec<Column> = cols
            .into_iter()
            .enumerate()
            .map(|(i, vals)| column(i, vals))
            .collect();
        let refs: Vec<&Column> = columns.iter().collect();
        let config = IndexConfig { keep_patterns: true, ..Default::default() };
        let index = PatternIndex::build(&refs, &config);
        let values: Vec<&str> = columns
            .iter()
            .flat_map(|c| c.values.iter().map(String::as_str))
            .collect();
        for (fp, _) in index.entries() {
            let printed = index.pattern_string(fp).expect("keep_patterns build");
            let pattern = av_pattern::parse(printed).expect("indexed patterns parse");
            prop_assert_eq!(pattern.fingerprint(), fp, "fingerprint round-trip: {}", printed);
            let compiled = pattern.compile();
            for v in &values {
                prop_assert_eq!(
                    compiled.matches(v),
                    av_pattern::matches(&pattern, v),
                    "compiled vs reference: {} ~ {:?}", printed, v
                );
            }
        }
    }
}
