//! Property-based tests for index invariants on arbitrary synthetic columns.

use av_corpus::{Column, ColumnMeta};
use av_index::{IndexConfig, PatternIndex};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9:/._-]{0,12}").expect("valid regex")
}

fn column(id: usize, values: Vec<String>) -> Column {
    Column {
        name: format!("c{id}"),
        values,
        meta: ColumnMeta::machine("prop", None),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any corpus: FPRs live in [0,1], coverage never exceeds the
    /// column count, token lengths are consistent, and serialization
    /// round-trips.
    #[test]
    fn index_invariants(
        cols in proptest::collection::vec(
            proptest::collection::vec(value(), 1..20),
            1..12,
        )
    ) {
        let columns: Vec<Column> = cols
            .into_iter()
            .enumerate()
            .map(|(i, vals)| column(i, vals))
            .collect();
        let refs: Vec<&Column> = columns.iter().collect();
        let index = PatternIndex::build(&refs, &IndexConfig::default());
        prop_assert_eq!(index.num_columns, refs.len() as u64);
        for (_, stats) in index.entries() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.fpr), "fpr {}", stats.fpr);
            prop_assert!(stats.cov >= 1);
            prop_assert!(stats.cov <= index.num_columns);
        }
        let restored = PatternIndex::from_bytes(&index.to_bytes()).expect("roundtrip");
        prop_assert_eq!(restored.len(), index.len());
    }

    /// Duplicating every column doubles coverage counts but keeps FPRs.
    #[test]
    fn duplication_scales_coverage_not_fpr(
        cols in proptest::collection::vec(
            proptest::collection::vec(value(), 2..12),
            1..6,
        )
    ) {
        let single: Vec<Column> = cols
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| column(i, v))
            .collect();
        let doubled: Vec<Column> = cols
            .iter()
            .cloned()
            .chain(cols.iter().cloned())
            .enumerate()
            .map(|(i, v)| column(i, v))
            .collect();
        let idx1 = PatternIndex::build(&single.iter().collect::<Vec<_>>(), &IndexConfig::default());
        let idx2 = PatternIndex::build(&doubled.iter().collect::<Vec<_>>(), &IndexConfig::default());
        prop_assert_eq!(idx1.len(), idx2.len(), "same pattern set");
        let map2: std::collections::HashMap<u64, av_index::PatternStats> = idx2.entries().collect();
        for (k, s1) in idx1.entries() {
            let s2 = map2.get(&k).expect("pattern survives duplication");
            prop_assert_eq!(s2.cov, s1.cov * 2, "coverage doubles");
            prop_assert!((s2.fpr - s1.fpr).abs() < 1e-9, "fpr invariant");
        }
    }
}
