//! The paper's programmatic evaluation methodology (§5.1).
//!
//! For each benchmark case `C_i`: a method trains on `C_i`'s first 10%,
//! then
//!
//! * **precision** `P_A(C_i)` is 1 iff no value of `C_i`'s held-out 90% is
//!   flagged (same column, same domain — any alarm is a false positive);
//! * **recall** `R_A(C_i)` is the fraction of *other* columns `C_j (j ≠ i)`
//!   the rule correctly flags (simulated schema-drift);
//! * a case with a false positive has its recall squashed to 0;
//! * overall numbers average across cases.
//!
//! The ground-truth variant (Table 2) additionally (1) scores precision on
//! the test values that genuinely belong to the column's domain, and (2)
//! does not count same-domain columns `C_j` as recall losses.

use av_baselines::ColumnValidator;
use av_corpus::{Benchmark, BenchmarkCase};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Harness knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// How many other columns each case's rule is tested against for
    /// recall (0 = all of them, the paper's exact setting; a sample keeps
    /// n² work bounded on large benchmarks).
    pub recall_sample: usize,
    /// Cap on test values fed to each pass/fail decision.
    pub test_value_cap: usize,
    /// Seed for the recall sample.
    pub seed: u64,
    /// Evaluate only pattern-eligible cases (the paper's 571/1000 subset).
    pub eligible_only: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            recall_sample: 100,
            test_value_cap: 200,
            seed: 0xAE57,
            eligible_only: true,
        }
    }
}

/// Per-case outcome.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Column name (links back to the corpus).
    pub column: String,
    /// Generating domain, when known.
    pub domain: Option<String>,
    /// 1.0 / 0.0 — no false positive on the held-out test split.
    pub precision: f64,
    /// Programmatic recall over the sampled other columns (squashed to 0 on
    /// any false positive).
    pub recall: f64,
    /// Ground-truth-adjusted precision (Table 2).
    pub precision_gt: f64,
    /// Ground-truth-adjusted recall (same-domain columns not counted).
    pub recall_gt: f64,
    /// The inferred rule (None = method declined).
    pub rule: Option<String>,
    /// Wall-clock inference time in microseconds.
    pub infer_micros: u64,
}

impl CaseResult {
    /// Case-level F1 from the programmatic precision/recall.
    pub fn f1(&self) -> f64 {
        av_stats::f1_score(self.precision, self.recall)
    }
}

/// Aggregated outcome for one method.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method display name.
    pub method: String,
    /// Average precision across cases.
    pub precision: f64,
    /// Average recall across cases.
    pub recall: f64,
    /// Ground-truth-adjusted averages (Table 2).
    pub precision_gt: f64,
    /// Ground-truth-adjusted recall.
    pub recall_gt: f64,
    /// Mean inference latency (milliseconds).
    pub avg_latency_ms: f64,
    /// Per-case details.
    pub cases: Vec<CaseResult>,
}

impl MethodResult {
    /// F1 of the averaged precision/recall.
    pub fn f1(&self) -> f64 {
        av_stats::f1_score(self.precision, self.recall)
    }
}

/// Evaluate one method over a benchmark.
pub fn evaluate_method(
    validator: &dyn ColumnValidator,
    benchmark: &Benchmark,
    cfg: &EvalConfig,
) -> MethodResult {
    let cases: Vec<&BenchmarkCase> = if cfg.eligible_only {
        benchmark.eligible_cases().collect()
    } else {
        benchmark.cases.iter().collect()
    };
    let results: Vec<CaseResult> = std::thread::scope(|scope| {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(1);
        let chunk = cases.len().div_ceil(shards).max(1);
        let handles: Vec<_> = cases
            .chunks(chunk)
            .enumerate()
            .map(|(shard_id, shard)| {
                let all = &cases;
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(shard.len());
                    for (k, case) in shard.iter().enumerate() {
                        let case_index = shard_id * chunk + k;
                        out.push(evaluate_case(validator, case, case_index, all, cfg));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    });
    let n = results.len().max(1) as f64;
    MethodResult {
        method: validator.name().to_string(),
        precision: results.iter().map(|c| c.precision).sum::<f64>() / n,
        recall: results.iter().map(|c| c.recall).sum::<f64>() / n,
        precision_gt: results.iter().map(|c| c.precision_gt).sum::<f64>() / n,
        recall_gt: results.iter().map(|c| c.recall_gt).sum::<f64>() / n,
        avg_latency_ms: results.iter().map(|c| c.infer_micros as f64).sum::<f64>() / n / 1000.0,
        cases: results,
    }
}

fn evaluate_case(
    validator: &dyn ColumnValidator,
    case: &BenchmarkCase,
    case_index: usize,
    all: &[&BenchmarkCase],
    cfg: &EvalConfig,
) -> CaseResult {
    let train: Vec<&str> = case.train.iter().map(String::as_str).collect();
    let start = Instant::now();
    let rule = validator.infer(&train);
    let infer_micros = start.elapsed().as_micros() as u64;
    let Some(rule) = rule else {
        // Declined: passes everything — perfect precision, zero recall.
        return CaseResult {
            column: case.column.name.clone(),
            domain: case.domain().map(|s| s.to_string()),
            precision: 1.0,
            recall: 0.0,
            precision_gt: 1.0,
            recall_gt: 0.0,
            rule: None,
            infer_micros,
        };
    };
    // Everything downstream borrows the case's values — the harness never
    // copies a test value.
    let test: Vec<&str> = case
        .test
        .iter()
        .take(cfg.test_value_cap)
        .map(String::as_str)
        .collect();
    let precision = if rule.passes(test.iter().copied()) {
        1.0
    } else {
        0.0
    };
    // Ground-truth precision: keep only test values that genuinely belong
    // to the domain (removes injected dirt, like the paper's manual
    // cleaning pass).
    let precision_gt = match &case.column.meta.ground_truth {
        Some(gt) => {
            let gt_compiled = gt.compile();
            let clean: Vec<&str> = test
                .iter()
                .copied()
                .filter(|v| gt_compiled.matches(v))
                .collect();
            if clean.is_empty() || rule.passes(clean) {
                1.0
            } else {
                0.0
            }
        }
        None => precision,
    };
    // Recall over other columns.
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(case_index as u64));
    let mut others: Vec<&BenchmarkCase> = all
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != case_index)
        .map(|(_, c)| *c)
        .collect();
    if cfg.recall_sample > 0 && others.len() > cfg.recall_sample {
        others.shuffle(&mut rng);
        others.truncate(cfg.recall_sample);
    }
    let mut flagged = 0usize;
    let mut flagged_gt = 0usize;
    let mut total_gt = 0usize;
    for other in &others {
        let other_vals = other.test.iter().take(cfg.test_value_cap);
        let caught = !rule.passes(other_vals);
        if caught {
            flagged += 1;
        }
        // Ground-truth adjustment: same-domain columns are not recall
        // losses (nor credits) — skip them entirely.
        let same_domain = match (case.domain(), other.domain()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        if !same_domain {
            total_gt += 1;
            if caught {
                flagged_gt += 1;
            }
        }
    }
    let recall_raw = flagged as f64 / others.len().max(1) as f64;
    let recall_gt_raw = flagged_gt as f64 / total_gt.max(1) as f64;
    CaseResult {
        column: case.column.name.clone(),
        domain: case.domain().map(|s| s.to_string()),
        // Squash recall on any false positive (§5.1).
        recall: if precision == 0.0 { 0.0 } else { recall_raw },
        recall_gt: if precision_gt == 0.0 {
            0.0
        } else {
            recall_gt_raw
        },
        precision,
        precision_gt,
        rule: Some(rule.description),
        infer_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_baselines::{InferredRule, PottersWheel, Tfdv};
    use av_corpus::{generate_lake, LakeProfile};

    fn bench() -> Benchmark {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(400), 21);
        Benchmark::sample(&corpus, 60, 20, 200, 5)
    }

    #[test]
    fn results_are_within_bounds() {
        let b = bench();
        let cfg = EvalConfig {
            recall_sample: 20,
            ..Default::default()
        };
        for validator in [&Tfdv as &dyn ColumnValidator, &PottersWheel] {
            let r = evaluate_method(validator, &b, &cfg);
            assert!((0.0..=1.0).contains(&r.precision), "{}", r.method);
            assert!((0.0..=1.0).contains(&r.recall));
            assert!(
                r.precision_gt >= r.precision - 1e-12,
                "gt cleaning only helps"
            );
            assert!(!r.cases.is_empty());
        }
    }

    #[test]
    fn tfdv_has_poor_precision_on_machine_data() {
        // The paper: TFDV false-alarms on >90% of string columns.
        let b = bench();
        let cfg = EvalConfig {
            recall_sample: 10,
            ..Default::default()
        };
        let r = evaluate_method(&Tfdv, &b, &cfg);
        assert!(
            r.precision < 0.5,
            "dictionaries should false-alarm heavily, got {}",
            r.precision
        );
    }

    #[test]
    fn perfect_oracle_scores_perfectly() {
        // A validator that flags exactly the foreign columns by cheating on
        // the benchmark's pass-through description.
        struct Oracle;
        impl ColumnValidator for Oracle {
            fn name(&self) -> &str {
                "oracle"
            }
            fn infer(&self, train: &[&str]) -> Option<InferredRule> {
                let sig: std::collections::HashSet<String> = train
                    .iter()
                    .map(|v| av_pattern::coarse_pattern(v).to_string())
                    .collect();
                // Pass while a majority of values carry a seen coarse shape.
                Some(InferredRule::tolerant("oracle", 0.5, move |v: &str| {
                    sig.contains(&av_pattern::coarse_pattern(v).to_string())
                }))
            }
        }
        let b = bench();
        let cfg = EvalConfig {
            recall_sample: 10,
            ..Default::default()
        };
        let r = evaluate_method(&Oracle, &b, &cfg);
        assert!(r.precision > 0.8, "oracle precision {}", r.precision);
        assert!(r.recall > 0.5, "oracle recall {}", r.recall);
    }

    #[test]
    fn recall_squashing_applies() {
        // A validator that always fails everything: precision 0 ⇒ recall 0.
        struct AlwaysFlag;
        impl ColumnValidator for AlwaysFlag {
            fn name(&self) -> &str {
                "always-flag"
            }
            fn infer(&self, _: &[&str]) -> Option<InferredRule> {
                Some(InferredRule::all_match("flag-all", |_: &str| false))
            }
        }
        let b = bench();
        let cfg = EvalConfig {
            recall_sample: 5,
            ..Default::default()
        };
        let r = evaluate_method(&AlwaysFlag, &b, &cfg);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0, "squashed despite flagging everything");
    }
}
