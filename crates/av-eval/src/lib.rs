//! # av-eval — the SIGMOD'21 §5 evaluation harness
//!
//! Implements the paper's programmatic methodology: 10/90 train/test
//! splits, precision = "no false alarm on the same column's future
//! values", recall = "fraction of other columns flagged" with recall
//! squashed to zero on any false positive, plus the manually-labeled
//! ground-truth adjustments of Table 2 (our generators carry their
//! ground-truth patterns, standing in for the authors' hand labels).
//!
//! [`FmdvValidator`] and [`NoIndexFmdv`] adapt the `av-core` engine to the
//! same [`av_baselines::ColumnValidator`] interface all baselines use, so
//! one harness ([`evaluate_method`]) produces every number in Fig. 10–14.
//! The harness runs exclusively through the [`av_core::Validator`] trait:
//! FMDV rules go in via `InferredRule::from_validator` (no bespoke wrapper
//! closures), and every pass/fail decision streams borrowed `&str` values.

mod fmdv_validator;
mod methodology;
mod report;

pub use fmdv_validator::{FmdvValidator, NoIndexFmdv};
pub use methodology::{evaluate_method, CaseResult, EvalConfig, MethodResult};
pub use report::{latency_table, precision_recall_table, write_results_csv, write_series_csv};
