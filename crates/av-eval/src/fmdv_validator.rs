//! Adapters exposing the Auto-Validate engine (and its no-index ablation)
//! through the baseline [`ColumnValidator`] interface, so every method runs
//! under the same §5.1 harness.
//!
//! There is no bespoke wrapper logic here anymore: an FMDV rule *is* an
//! [`av_core::Validator`], so adapting it to the harness is one
//! [`InferredRule::from_validator`] call — the rule's own streaming
//! validation (including the §4 homogeneity test) is what the harness runs.

use av_baselines::{ColumnValidator, InferredRule};
use av_core::{AutoValidate, FmdvConfig, Variant};
use av_corpus::Column;
use av_index::{scan_corpus_fpr, IndexConfig, PatternIndex};
use av_pattern::hypothesis_space;
use std::sync::Arc;

/// FMDV (any variant) as a `ColumnValidator`.
pub struct FmdvValidator {
    index: Arc<PatternIndex>,
    config: FmdvConfig,
    variant: Variant,
    label: String,
}

impl FmdvValidator {
    /// Wrap an index + config + variant.
    pub fn new(index: Arc<PatternIndex>, config: FmdvConfig, variant: Variant) -> FmdvValidator {
        FmdvValidator {
            index,
            config,
            variant,
            label: variant.label().to_string(),
        }
    }

    /// Override the display label (used by sensitivity sweeps).
    pub fn with_label(mut self, label: impl Into<String>) -> FmdvValidator {
        self.label = label.into();
        self
    }
}

impl ColumnValidator for FmdvValidator {
    fn name(&self) -> &str {
        &self.label
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        let engine = AutoValidate::new(&self.index, self.config.clone());
        let rule = engine.infer(train.iter().copied(), self.variant).ok()?;
        Some(InferredRule::from_validator(rule))
    }
}

/// The "FMDV (no-index)" reference point of Fig. 14: identical selection
/// logic, but `FPR_T`/`Cov_T` are computed by scanning the corpus at query
/// time instead of a pre-computed index. Orders of magnitude slower — which
/// is the point. The scan itself rides the fingerprint-streaming
/// enumeration (`av_index::scan_corpus_fpr` matches probes by streamed
/// fingerprint, materializing nothing), so the gap it demonstrates is
/// index-vs-no-index, not matcher overhead.
pub struct NoIndexFmdv {
    columns: Arc<Vec<Column>>,
    config: FmdvConfig,
    index_config: IndexConfig,
}

impl NoIndexFmdv {
    /// Wrap corpus columns directly.
    pub fn new(columns: Arc<Vec<Column>>, config: FmdvConfig) -> NoIndexFmdv {
        // The scan must mirror the offline build's enumeration exactly
        // (same caps, same τ), or borderline patterns get different stats.
        let index_config = IndexConfig {
            tau: config.max_segment_tokens,
            ..Default::default()
        };
        NoIndexFmdv {
            columns,
            config,
            index_config,
        }
    }
}

impl ColumnValidator for NoIndexFmdv {
    fn name(&self) -> &str {
        "FMDV (no-index)"
    }

    fn infer(&self, train: &[&str]) -> Option<InferredRule> {
        let hypotheses = hypothesis_space(train, &self.config.pattern);
        if hypotheses.is_empty() {
            return None;
        }
        let refs: Vec<&Column> = self.columns.iter().collect();
        let stats = scan_corpus_fpr(&refs, &hypotheses, &self.index_config);
        let best = hypotheses
            .iter()
            .zip(&stats)
            .filter(|(_, (fpr, cov))| *fpr <= self.config.r && *cov >= self.config.m)
            .min_by(|a, b| {
                // Same rule as av-core: most specific feasible pattern, FPR
                // and coverage as tie-breaks.
                a.0.specificity()
                    .cmp(&b.0.specificity())
                    .then_with(|| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
                    .then_with(|| b.1 .1.cmp(&a.1 .1))
                    .then_with(|| a.0.cmp(b.0))
            })
            .map(|(p, _)| p.clone())?;
        // Compile once at inference; the rule's closure runs the byte-level
        // program on every check instead of the reference matcher.
        let compiled = best.compile();
        Some(InferredRule::all_match(best.to_string(), move |v: &str| {
            compiled.matches(v)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_corpus::{generate_lake, LakeProfile};

    fn refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    #[test]
    fn fmdv_validator_round_trips() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(600), 77);
        let cols: Vec<&Column> = corpus.columns().collect();
        let index = Arc::new(PatternIndex::build(&cols, &IndexConfig::default()));
        let config = FmdvConfig::scaled_for_corpus(index.num_columns);
        let v = FmdvValidator::new(index, config, Variant::FmdvVH);
        assert_eq!(v.name(), "FMDV-VH");
        let train: Vec<String> = (0..40)
            .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
            .collect();
        let rule = v.infer(&refs(&train)).expect("rule inferred");
        let same: Vec<String> = (0..40)
            .map(|i| format!("{:02}:{:02}:{:02}", (i * 5) % 24, (i * 11) % 60, i % 60))
            .collect();
        assert!(rule.passes(&same));
        let other: Vec<String> = (0..40).map(|i| format!("user-{i}")).collect();
        assert!(!rule.passes(&other));
    }

    #[test]
    fn no_index_agrees_with_indexed_on_clean_columns() {
        let corpus = generate_lake(&LakeProfile::tiny().scaled(300), 13);
        let columns: Arc<Vec<Column>> = Arc::new(corpus.columns().cloned().collect());
        let col_refs: Vec<&Column> = columns.iter().collect();
        let index = Arc::new(PatternIndex::build(&col_refs, &IndexConfig::default()));
        let config = FmdvConfig::scaled_for_corpus(index.num_columns);
        let indexed = FmdvValidator::new(index, config.clone(), Variant::Fmdv);
        let scanning = NoIndexFmdv::new(columns.clone(), config);
        let train: Vec<String> = (0..30)
            .map(|i| format!("{:02}:{:02}:{:02}", i % 24, (i * 7) % 60, (i * 13) % 60))
            .collect();
        let a = indexed.infer(&refs(&train)).map(|r| r.description);
        let b = scanning.infer(&refs(&train)).map(|r| r.description);
        match (a, b) {
            (Some(da), Some(db)) => {
                // The indexed rule's description embeds FPR/coverage; just
                // check both chose the same pattern prefix.
                let pa = da.split(" (").next().unwrap().to_string();
                let pb = db.split(" (").next().unwrap().to_string();
                assert_eq!(pa, pb);
            }
            (None, None) => {}
            (a, b) => panic!("disagreement: {a:?} vs {b:?}"),
        }
    }
}
