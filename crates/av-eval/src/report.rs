//! Report writers: aligned text tables for the console and CSV files for
//! downstream plotting — one per paper table/figure.

use crate::methodology::MethodResult;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Render method results as an aligned text table (the console analogue of
/// Fig. 10's scatter).
pub fn precision_recall_table(results: &[MethodResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "method", "precision", "recall", "F1", "precision-GT", "recall-GT"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    for r in results {
        let _ = writeln!(
            out,
            "{:<18} {:>10.3} {:>10.3} {:>8.3} {:>12.3} {:>12.3}",
            r.method,
            r.precision,
            r.recall,
            r.f1(),
            r.precision_gt,
            r.recall_gt
        );
    }
    out
}

/// Render a latency table (Fig. 14): average milliseconds per query column.
pub fn latency_table(results: &[(String, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<20} {:>16}", "method", "avg latency (ms)");
    let _ = writeln!(out, "{}", "-".repeat(38));
    for (name, ms) in results {
        let _ = writeln!(out, "{:<20} {:>16.3}", name, ms);
    }
    out
}

/// Write method results as CSV (`method,precision,recall,f1,precision_gt,recall_gt,latency_ms`).
pub fn write_results_csv(path: impl AsRef<Path>, results: &[MethodResult]) -> io::Result<()> {
    let mut s = String::from("method,precision,recall,f1,precision_gt,recall_gt,latency_ms\n");
    for r in results {
        let _ = writeln!(
            s,
            "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            r.method,
            r.precision,
            r.recall,
            r.f1(),
            r.precision_gt,
            r.recall_gt,
            r.avg_latency_ms
        );
    }
    if let Some(dir) = path.as_ref().parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, s)
}

/// Write an arbitrary series as CSV with a header row.
pub fn write_series_csv(
    path: impl AsRef<Path>,
    header: &str,
    rows: &[Vec<String>],
) -> io::Result<()> {
    let mut s = String::from(header);
    s.push('\n');
    for row in rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    if let Some(dir) = path.as_ref().parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methodology::MethodResult;

    fn result(name: &str) -> MethodResult {
        MethodResult {
            method: name.into(),
            precision: 0.96,
            recall: 0.88,
            precision_gt: 0.963,
            recall_gt: 0.915,
            avg_latency_ms: 0.08,
            cases: vec![],
        }
    }

    #[test]
    fn table_contains_all_methods() {
        let t = precision_recall_table(&[result("FMDV-VH"), result("PWheel")]);
        assert!(t.contains("FMDV-VH"));
        assert!(t.contains("PWheel"));
        assert!(t.contains("0.960"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("av_eval_report_test");
        let path = dir.join("fig10.csv");
        write_results_csv(&path, &[result("FMDV")]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("method,precision"));
        assert_eq!(content.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn series_csv() {
        let dir = std::env::temp_dir().join("av_eval_series_test");
        let path = dir.join("fig12.csv");
        write_series_csv(
            &path,
            "r,precision,recall",
            &[vec!["0.1".into(), "0.96".into(), "0.88".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "r,precision,recall\n0.1,0.96,0.88\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
