//! [`Pattern`]: a sequence of tokens describing a data domain.

use crate::token::Token;
use std::fmt;

/// A data-domain pattern: an ordered sequence of [`Token`]s.
///
/// A pattern *matches* a string when the tokens can consume the entire
/// string left to right (see [`crate::matches`]). Patterns are the unit
/// stored in the offline index and produced as validation rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pattern {
    tokens: Vec<Token>,
}

impl Pattern {
    /// Build a pattern from tokens.
    ///
    /// Adjacent literal tokens are canonicalized into one (`Lit("/m")` +
    /// `Lit("/")` ≡ `Lit("/m/")`), so patterns assembled from differently
    /// sliced literals compare equal.
    pub fn new(tokens: Vec<Token>) -> Pattern {
        let mut canon: Vec<Token> = Vec::with_capacity(tokens.len());
        for t in tokens {
            match (canon.last_mut(), &t) {
                (Some(Token::Lit(prev)), Token::Lit(next)) => {
                    let mut s = String::with_capacity(prev.len() + next.len());
                    s.push_str(prev);
                    s.push_str(next);
                    *prev = s.into_boxed_str();
                }
                _ => canon.push(t),
            }
        }
        Pattern { tokens: canon }
    }

    /// The empty pattern (matches only the empty string).
    pub fn empty() -> Pattern {
        Pattern { tokens: Vec::new() }
    }

    /// Borrow the token sequence.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the pattern has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The paper excludes the trivial `.*` pattern from every hypothesis
    /// space (`H(C) = ∩ P(v) \ ".*"`, §2.1). Our equivalent of `.*` is a
    /// pattern consisting solely of `<any>+` tokens.
    pub fn is_trivial(&self) -> bool {
        !self.tokens.is_empty() && self.tokens.iter().all(Token::is_any)
    }

    /// Concatenate two patterns (used when stitching vertical-cut segments).
    pub fn concat(&self, other: &Pattern) -> Pattern {
        let mut tokens = Vec::with_capacity(self.tokens.len() + other.tokens.len());
        tokens.extend_from_slice(&self.tokens);
        tokens.extend_from_slice(&other.tokens);
        Pattern::new(tokens)
    }

    /// Sub-pattern over the token range `[start, end)` (vertical cuts, §3).
    pub fn slice(&self, start: usize, end: usize) -> Pattern {
        Pattern {
            tokens: self.tokens[start..end].to_vec(),
        }
    }

    /// Sum of per-token specificity ranks; smaller = more specific. Used
    /// only for deterministic tie-breaking among patterns with equal FPR.
    pub fn specificity(&self) -> u32 {
        self.tokens.iter().map(|t| t.specificity() as u32).sum()
    }

    /// A stable 64-bit fingerprint of the pattern (FNV-1a over the display
    /// form structure). Stable across processes; used as a compact index key.
    pub fn fingerprint(&self) -> u64 {
        self.tokens
            .iter()
            .fold(FingerprintState::new(), |st, t| st.push(t))
            .finish()
    }

    /// Render the pattern as a regex string usable with `av-regex` or any
    /// POSIX-ish engine. Anchored implicitly (the caller should use a
    /// full-match API).
    pub fn to_regex(&self) -> String {
        let mut out = String::new();
        for t in &self.tokens {
            match t {
                Token::Lit(s) => {
                    for c in s.chars() {
                        if "\\^$.|?*+()[]{}".contains(c) {
                            out.push('\\');
                        }
                        out.push(c);
                    }
                }
                Token::Digit(n) => out.push_str(&format!("[0-9]{{{n}}}")),
                Token::DigitPlus => out.push_str("[0-9]+"),
                Token::Num => out.push_str("[0-9]+(\\.[0-9]+)?"),
                Token::Upper(n) => out.push_str(&format!("[A-Z]{{{n}}}")),
                Token::UpperPlus => out.push_str("[A-Z]+"),
                Token::Lower(n) => out.push_str(&format!("[a-z]{{{n}}}")),
                Token::LowerPlus => out.push_str("[a-z]+"),
                Token::Letter(n) => out.push_str(&format!("[A-Za-z]{{{n}}}")),
                Token::LetterPlus => out.push_str("[A-Za-z]+"),
                Token::Alnum(n) => out.push_str(&format!("[A-Za-z0-9]{{{n}}}")),
                Token::AlnumPlus => out.push_str("[A-Za-z0-9]+"),
                Token::Sym(n) => out.push_str(&format!("[^A-Za-z0-9\\s]{{{n}}}")),
                Token::SymPlus => out.push_str("[^A-Za-z0-9\\s]+"),
                Token::SpacePlus => out.push_str("\\s+"),
                Token::AnyPlus => out.push_str("(.|\\n)+"),
            }
        }
        out
    }
}

/// Incremental FNV-1a fingerprint over a token sequence.
///
/// `Pattern::fingerprint` is defined as a fold of this state over the
/// pattern's canonical tokens, so the two can never drift apart. The state
/// is 16 bytes and `Copy`, which is what lets the enumeration DFS thread a
/// running hash through `push` on descend and restore the parent's saved
/// state on backtrack — no token vector is ever materialized just to be
/// hashed.
///
/// Canonicalization is handled here too: [`Pattern::new`] fuses adjacent
/// literal tokens into one, so pushing `Lit("ab")` then `Lit("12")` must
/// hash exactly like pushing `Lit("ab12")`. The state keeps an "open
/// literal" flag and defers the literal terminator byte until the next
/// non-literal token (or [`FingerprintState::finish`]).
///
/// ```
/// use av_pattern::{FingerprintState, Pattern, Token};
/// let tokens = vec![Token::lit("ab"), Token::lit("12"), Token::DigitPlus];
/// let streamed = tokens
///     .iter()
///     .fold(FingerprintState::new(), |st, t| st.push(t))
///     .finish();
/// assert_eq!(streamed, Pattern::new(tokens).fingerprint());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintState {
    h: u64,
    lit_open: bool,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Plain FNV-1a over a byte slice — the same primitive
/// [`Pattern::fingerprint`] is built on, exposed so dependants (e.g. the
/// index's persisted-image digest) don't re-implement the constants.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, b| fnv(h, *b))
}

impl FingerprintState {
    /// State over the empty token sequence.
    #[inline]
    pub fn new() -> FingerprintState {
        FingerprintState {
            h: FNV_OFFSET,
            lit_open: false,
        }
    }

    /// Would pushing `t` merge into the previously pushed token (i.e. both
    /// are literals, which [`Pattern::new`] canonicalizes into one)? Lets
    /// callers track the *canonical* token count incrementally.
    #[inline]
    pub fn merges(&self, t: &Token) -> bool {
        self.lit_open && matches!(t, Token::Lit(_))
    }

    /// The state after appending `t` to the sequence.
    #[inline]
    pub fn push(&self, t: &Token) -> FingerprintState {
        let mut h = self.h;
        if let Token::Lit(s) = t {
            if !self.lit_open {
                h = fnv(h, 1);
            }
            for b in s.as_bytes() {
                h = fnv(h, *b);
            }
            return FingerprintState { h, lit_open: true };
        }
        if self.lit_open {
            h = fnv(h, 0); // terminate the merged literal
        }
        let tagged = |h: u64, tag: u8, n: u16| fnv(fnv(fnv(h, tag), n as u8), (n >> 8) as u8);
        h = match t {
            Token::Lit(_) => unreachable!("handled above"),
            Token::Digit(n) => tagged(h, 2, *n),
            Token::DigitPlus => fnv(h, 3),
            Token::Num => fnv(h, 4),
            Token::Upper(n) => tagged(h, 5, *n),
            Token::UpperPlus => fnv(h, 6),
            Token::Lower(n) => tagged(h, 7, *n),
            Token::LowerPlus => fnv(h, 8),
            Token::Letter(n) => tagged(h, 9, *n),
            Token::LetterPlus => fnv(h, 10),
            Token::Alnum(n) => tagged(h, 11, *n),
            Token::AlnumPlus => fnv(h, 12),
            Token::Sym(n) => tagged(h, 13, *n),
            Token::SymPlus => fnv(h, 14),
            Token::SpacePlus => fnv(h, 15),
            Token::AnyPlus => fnv(h, 16),
        };
        FingerprintState { h, lit_open: false }
    }

    /// The fingerprint of the sequence pushed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        if self.lit_open {
            fnv(self.h, 0)
        } else {
            self.h
        }
    }
}

impl Default for FingerprintState {
    fn default() -> Self {
        FingerprintState::new()
    }
}

impl From<Vec<Token>> for Pattern {
    fn from(tokens: Vec<Token>) -> Pattern {
        Pattern::new(tokens)
    }
}

impl FromIterator<Token> for Pattern {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Pattern {
        Pattern::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tokens {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(tokens: Vec<Token>) -> Pattern {
        Pattern::new(tokens)
    }

    #[test]
    fn display_of_paper_pattern() {
        // "<letter>{3} <digit>{2} <digit>{4}" from §1 (validation pattern for C1).
        let pat = p(vec![
            Token::Letter(3),
            Token::lit(" "),
            Token::Digit(2),
            Token::lit(" "),
            Token::Digit(4),
        ]);
        assert_eq!(pat.to_string(), "<letter>{3} <digit>{2} <digit>{4}");
    }

    #[test]
    fn trivial_detection() {
        assert!(p(vec![Token::AnyPlus]).is_trivial());
        assert!(p(vec![Token::AnyPlus, Token::AnyPlus]).is_trivial());
        assert!(!p(vec![Token::AnyPlus, Token::lit("/")]).is_trivial());
        assert!(!Pattern::empty().is_trivial());
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = p(vec![Token::Digit(2), Token::lit("/")]);
        let b = p(vec![Token::Digit(4)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.slice(0, 2), a);
        assert_eq!(c.slice(2, 3), b);
    }

    #[test]
    fn fingerprint_distinguishes_width() {
        assert_ne!(
            p(vec![Token::Digit(2)]).fingerprint(),
            p(vec![Token::Digit(3)]).fingerprint()
        );
        assert_ne!(
            p(vec![Token::Digit(2)]).fingerprint(),
            p(vec![Token::Letter(2)]).fingerprint()
        );
        assert_eq!(
            p(vec![Token::Num, Token::lit(":")]).fingerprint(),
            p(vec![Token::Num, Token::lit(":")]).fingerprint()
        );
    }

    #[test]
    fn adjacent_literals_canonicalize() {
        let a = p(vec![Token::lit("/m"), Token::lit("/"), Token::AlnumPlus]);
        let b = p(vec![
            Token::lit("/"),
            Token::lit("m"),
            Token::lit("/"),
            Token::AlnumPlus,
        ]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn regex_rendering() {
        let pat = p(vec![Token::Digit(2), Token::lit("."), Token::LetterPlus]);
        assert_eq!(pat.to_regex(), "[0-9]{2}\\.[A-Za-z]+");
    }

    #[test]
    fn incremental_fingerprint_merges_adjacent_literals() {
        // Raw token sequences that canonicalize to the same pattern must
        // stream to the same fingerprint — including literal splits around
        // class tokens and at the end of the sequence.
        let cases: Vec<Vec<Token>> = vec![
            vec![Token::lit("ab"), Token::lit("12")],
            vec![Token::lit("a"), Token::lit("b"), Token::lit("12")],
            vec![
                Token::lit("/"),
                Token::Digit(2),
                Token::lit("x"),
                Token::lit("y"),
            ],
            vec![Token::lit("x"), Token::AnyPlus, Token::lit("y")],
            vec![],
            vec![Token::Num],
        ];
        for tokens in cases {
            let streamed = tokens
                .iter()
                .fold(FingerprintState::new(), |st, t| st.push(t))
                .finish();
            assert_eq!(
                streamed,
                Pattern::new(tokens.clone()).fingerprint(),
                "{tokens:?}"
            );
        }
    }

    #[test]
    fn split_and_whole_literals_fingerprint_equal_but_distinct_from_others() {
        let split = [Token::lit("ab"), Token::lit("12")]
            .iter()
            .fold(FingerprintState::new(), |st, t| st.push(t))
            .finish();
        assert_eq!(split, p(vec![Token::lit("ab12")]).fingerprint());
        assert_ne!(
            split,
            p(vec![Token::lit("ab"), Token::DigitPlus]).fingerprint()
        );
        assert_ne!(
            split,
            p(vec![Token::lit("ab1"), Token::lit("3")]).fingerprint()
        );
    }
}
