//! [`Pattern`]: a sequence of tokens describing a data domain.

use crate::token::Token;
use std::fmt;

/// A data-domain pattern: an ordered sequence of [`Token`]s.
///
/// A pattern *matches* a string when the tokens can consume the entire
/// string left to right (see [`crate::matches`]). Patterns are the unit
/// stored in the offline index and produced as validation rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pattern {
    tokens: Vec<Token>,
}

impl Pattern {
    /// Build a pattern from tokens.
    ///
    /// Adjacent literal tokens are canonicalized into one (`Lit("/m")` +
    /// `Lit("/")` ≡ `Lit("/m/")`), so patterns assembled from differently
    /// sliced literals compare equal.
    pub fn new(tokens: Vec<Token>) -> Pattern {
        let mut canon: Vec<Token> = Vec::with_capacity(tokens.len());
        for t in tokens {
            match (canon.last_mut(), &t) {
                (Some(Token::Lit(prev)), Token::Lit(next)) => {
                    let mut s = String::with_capacity(prev.len() + next.len());
                    s.push_str(prev);
                    s.push_str(next);
                    *prev = s.into_boxed_str();
                }
                _ => canon.push(t),
            }
        }
        Pattern { tokens: canon }
    }

    /// The empty pattern (matches only the empty string).
    pub fn empty() -> Pattern {
        Pattern { tokens: Vec::new() }
    }

    /// Borrow the token sequence.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the pattern has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The paper excludes the trivial `.*` pattern from every hypothesis
    /// space (`H(C) = ∩ P(v) \ ".*"`, §2.1). Our equivalent of `.*` is a
    /// pattern consisting solely of `<any>+` tokens.
    pub fn is_trivial(&self) -> bool {
        !self.tokens.is_empty() && self.tokens.iter().all(Token::is_any)
    }

    /// Concatenate two patterns (used when stitching vertical-cut segments).
    pub fn concat(&self, other: &Pattern) -> Pattern {
        let mut tokens = Vec::with_capacity(self.tokens.len() + other.tokens.len());
        tokens.extend_from_slice(&self.tokens);
        tokens.extend_from_slice(&other.tokens);
        Pattern::new(tokens)
    }

    /// Sub-pattern over the token range `[start, end)` (vertical cuts, §3).
    pub fn slice(&self, start: usize, end: usize) -> Pattern {
        Pattern {
            tokens: self.tokens[start..end].to_vec(),
        }
    }

    /// Sum of per-token specificity ranks; smaller = more specific. Used
    /// only for deterministic tie-breaking among patterns with equal FPR.
    pub fn specificity(&self) -> u32 {
        self.tokens.iter().map(|t| t.specificity() as u32).sum()
    }

    /// A stable 64-bit fingerprint of the pattern (FNV-1a over the display
    /// form structure). Stable across processes; used as a compact index key.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for t in &self.tokens {
            match t {
                Token::Lit(s) => {
                    eat(1);
                    for b in s.as_bytes() {
                        eat(*b);
                    }
                    eat(0);
                }
                Token::Digit(n) => {
                    eat(2);
                    eat(*n as u8);
                    eat((*n >> 8) as u8);
                }
                Token::DigitPlus => eat(3),
                Token::Num => eat(4),
                Token::Upper(n) => {
                    eat(5);
                    eat(*n as u8);
                    eat((*n >> 8) as u8);
                }
                Token::UpperPlus => eat(6),
                Token::Lower(n) => {
                    eat(7);
                    eat(*n as u8);
                    eat((*n >> 8) as u8);
                }
                Token::LowerPlus => eat(8),
                Token::Letter(n) => {
                    eat(9);
                    eat(*n as u8);
                    eat((*n >> 8) as u8);
                }
                Token::LetterPlus => eat(10),
                Token::Alnum(n) => {
                    eat(11);
                    eat(*n as u8);
                    eat((*n >> 8) as u8);
                }
                Token::AlnumPlus => eat(12),
                Token::Sym(n) => {
                    eat(13);
                    eat(*n as u8);
                    eat((*n >> 8) as u8);
                }
                Token::SymPlus => eat(14),
                Token::SpacePlus => eat(15),
                Token::AnyPlus => eat(16),
            }
        }
        h
    }

    /// Render the pattern as a regex string usable with `av-regex` or any
    /// POSIX-ish engine. Anchored implicitly (the caller should use a
    /// full-match API).
    pub fn to_regex(&self) -> String {
        let mut out = String::new();
        for t in &self.tokens {
            match t {
                Token::Lit(s) => {
                    for c in s.chars() {
                        if "\\^$.|?*+()[]{}".contains(c) {
                            out.push('\\');
                        }
                        out.push(c);
                    }
                }
                Token::Digit(n) => out.push_str(&format!("[0-9]{{{n}}}")),
                Token::DigitPlus => out.push_str("[0-9]+"),
                Token::Num => out.push_str("[0-9]+(\\.[0-9]+)?"),
                Token::Upper(n) => out.push_str(&format!("[A-Z]{{{n}}}")),
                Token::UpperPlus => out.push_str("[A-Z]+"),
                Token::Lower(n) => out.push_str(&format!("[a-z]{{{n}}}")),
                Token::LowerPlus => out.push_str("[a-z]+"),
                Token::Letter(n) => out.push_str(&format!("[A-Za-z]{{{n}}}")),
                Token::LetterPlus => out.push_str("[A-Za-z]+"),
                Token::Alnum(n) => out.push_str(&format!("[A-Za-z0-9]{{{n}}}")),
                Token::AlnumPlus => out.push_str("[A-Za-z0-9]+"),
                Token::Sym(n) => out.push_str(&format!("[^A-Za-z0-9\\s]{{{n}}}")),
                Token::SymPlus => out.push_str("[^A-Za-z0-9\\s]+"),
                Token::SpacePlus => out.push_str("\\s+"),
                Token::AnyPlus => out.push_str("(.|\\n)+"),
            }
        }
        out
    }
}

impl From<Vec<Token>> for Pattern {
    fn from(tokens: Vec<Token>) -> Pattern {
        Pattern::new(tokens)
    }
}

impl FromIterator<Token> for Pattern {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Pattern {
        Pattern::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tokens {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(tokens: Vec<Token>) -> Pattern {
        Pattern::new(tokens)
    }

    #[test]
    fn display_of_paper_pattern() {
        // "<letter>{3} <digit>{2} <digit>{4}" from §1 (validation pattern for C1).
        let pat = p(vec![
            Token::Letter(3),
            Token::lit(" "),
            Token::Digit(2),
            Token::lit(" "),
            Token::Digit(4),
        ]);
        assert_eq!(pat.to_string(), "<letter>{3} <digit>{2} <digit>{4}");
    }

    #[test]
    fn trivial_detection() {
        assert!(p(vec![Token::AnyPlus]).is_trivial());
        assert!(p(vec![Token::AnyPlus, Token::AnyPlus]).is_trivial());
        assert!(!p(vec![Token::AnyPlus, Token::lit("/")]).is_trivial());
        assert!(!Pattern::empty().is_trivial());
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = p(vec![Token::Digit(2), Token::lit("/")]);
        let b = p(vec![Token::Digit(4)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.slice(0, 2), a);
        assert_eq!(c.slice(2, 3), b);
    }

    #[test]
    fn fingerprint_distinguishes_width() {
        assert_ne!(
            p(vec![Token::Digit(2)]).fingerprint(),
            p(vec![Token::Digit(3)]).fingerprint()
        );
        assert_ne!(
            p(vec![Token::Digit(2)]).fingerprint(),
            p(vec![Token::Letter(2)]).fingerprint()
        );
        assert_eq!(
            p(vec![Token::Num, Token::lit(":")]).fingerprint(),
            p(vec![Token::Num, Token::lit(":")]).fingerprint()
        );
    }

    #[test]
    fn adjacent_literals_canonicalize() {
        let a = p(vec![Token::lit("/m"), Token::lit("/"), Token::AlnumPlus]);
        let b = p(vec![
            Token::lit("/"),
            Token::lit("m"),
            Token::lit("/"),
            Token::AlnumPlus,
        ]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn regex_rendering() {
        let pat = p(vec![Token::Digit(2), Token::lit("."), Token::LetterPlus]);
        assert_eq!(pat.to_regex(), "[0-9]{2}\\.[A-Za-z]+");
    }
}
