//! Compiled pattern programs: byte-level, allocation-free matching.
//!
//! [`crate::matches`] is the *reference* matcher — character-level memoized
//! backtracking, kept deliberately close to the paper's Def. 1 so it can
//! serve as the oracle in equivalence tests. It is also slow in the way
//! reference implementations are allowed to be: every call collects the
//! value into a `Vec<char>`, allocates a fresh memo table, and recurses one
//! Rust stack frame per token.
//!
//! [`CompiledPattern`] is the production matcher. A [`crate::Pattern`] is
//! *lowered once* into a flat instruction program:
//!
//! * adjacent same-class tokens are **fused** — `<digit>{2}<digit>{4}`
//!   becomes one bounded 6-char scan, `<digit>{2}<digit>+` one "6-or-more"
//!   run — so the program is usually shorter than the token list;
//! * literals are stored as pre-encoded byte slices (UTF-8 equality on
//!   `char` sequences is byte equality, so literal matching is `memcmp`);
//! * every instruction carries the **minimum bytes** the remaining program
//!   can accept, so hopeless positions are pruned before any scanning;
//! * matching runs directly over the value's UTF-8 bytes — no `Vec<char>`.
//!   The ASCII classes (`<digit>`, `<upper>`, …) test single bytes;
//!   `<sym>`/`<any>`, whose alphabets include multi-byte characters, step
//!   by encoded length, so positions always stay on `char` boundaries;
//! * backtracking over variadic tokens uses an **explicit heap stack** (one
//!   frame per suspended variadic, not one call frame per token — a
//!   10 000-token pattern is fine), with the failure memo of the reference
//!   matcher kept only when the program has two or more branch points
//!   (below that, no state can be reached twice, so the memo would be pure
//!   overhead — variadic-free patterns run a single deterministic scan).
//!
//! Verdicts are exactly those of the reference matcher; the equivalence is
//! property-tested in `tests/matcher_oracle.rs`.

use crate::pattern::Pattern;
use crate::token::Token;
use std::cell::RefCell;

/// Character class an instruction scans. Mirrors [`Token::class_contains`]:
/// the first six are pure-ASCII alphabets, `Sym` and `Any` also accept
/// multi-byte characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Digit,
    Upper,
    Lower,
    Letter,
    Alnum,
    Space,
    Sym,
    Any,
}

impl Class {
    /// Membership test for an ASCII byte (callers route non-ASCII
    /// separately via [`Class::accepts_multibyte`]).
    #[inline]
    fn contains_ascii(self, b: u8) -> bool {
        const fn is_ascii_space(b: u8) -> bool {
            matches!(b, b' ' | b'\t' | b'\r' | b'\n' | 0x0B | 0x0C)
        }
        match self {
            Class::Digit => b.is_ascii_digit(),
            Class::Upper => b.is_ascii_uppercase(),
            Class::Lower => b.is_ascii_lowercase(),
            Class::Letter => b.is_ascii_alphabetic(),
            Class::Alnum => b.is_ascii_alphanumeric(),
            Class::Space => is_ascii_space(b),
            // Same set as `CharClass::of(c) == Symbol` restricted to ASCII.
            Class::Sym => !b.is_ascii_alphanumeric() && !is_ascii_space(b),
            Class::Any => true,
        }
    }

    /// Does the class accept non-ASCII characters? (`CharClass::of` sends
    /// every non-ASCII `char` to `Symbol`, so `<sym>` and `<any>` do.)
    #[inline]
    fn accepts_multibyte(self) -> bool {
        matches!(self, Class::Sym | Class::Any)
    }

    /// Class name for explanation text.
    fn name(self) -> &'static str {
        match self {
            Class::Digit => "digit",
            Class::Upper => "uppercase",
            Class::Lower => "lowercase",
            Class::Letter => "letter",
            Class::Alnum => "alphanumeric",
            Class::Space => "whitespace",
            Class::Sym => "symbol",
            Class::Any => "any",
        }
    }
}

/// Encoded length of the character starting with lead byte `lead`
/// (callers guarantee `lead >= 0x80` came from a valid `&str` boundary).
#[inline]
fn utf8_len(lead: u8) -> usize {
    if lead < 0xE0 {
        2
    } else if lead < 0xF0 {
        3
    } else {
        4
    }
}

/// Consume one character of `class` at byte `pos`; returns the byte
/// position after it, or `None` when the position holds no such character.
#[inline]
fn eat_char(bytes: &[u8], pos: usize, class: Class) -> Option<usize> {
    let b = *bytes.get(pos)?;
    if b < 0x80 {
        if class.contains_ascii(b) {
            Some(pos + 1)
        } else {
            None
        }
    } else if class.accepts_multibyte() {
        Some(pos + utf8_len(b))
    } else {
        None
    }
}

/// One instruction of a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Inst {
    /// Match these exact bytes.
    Lit(Box<[u8]>),
    /// Exactly `chars` characters of `class` (fused fixed-width tokens).
    Fixed { class: Class, chars: u32 },
    /// `min_chars` or more characters of `class` (fused variadic runs;
    /// adjacent fixed widths of the same class fold into the minimum).
    Var { class: Class, min_chars: u32 },
    /// `<num>` = `\d+(\.\d+)?`, with full backtracking over end positions.
    Num,
}

impl Inst {
    /// Minimum bytes this instruction can accept (chars are ≥ 1 byte each,
    /// so a char count is a valid byte lower bound).
    fn min_bytes(&self) -> usize {
        match self {
            Inst::Lit(b) => b.len(),
            Inst::Fixed { chars, .. } => *chars as usize,
            Inst::Var { min_chars, .. } => *min_chars as usize,
            Inst::Num => 1,
        }
    }

    /// Is this a branch point (a choice of end positions)?
    fn is_branch(&self) -> bool {
        matches!(self, Inst::Var { .. } | Inst::Num)
    }
}

/// Character class of an instruction, as seen through
/// [`CompiledPattern::instructions`]. Mirrors the internal class exactly:
/// the first six are pure-ASCII alphabets; [`ClassView::Sym`] and
/// [`ClassView::Any`] also accept every multi-byte character (the paper's
/// generalization hierarchy sends all non-ASCII `char`s to `Symbol`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassView {
    /// `0-9`.
    Digit,
    /// `A-Z`.
    Upper,
    /// `a-z`.
    Lower,
    /// `A-Za-z`.
    Letter,
    /// `A-Za-z0-9`.
    Alnum,
    /// ASCII whitespace (space, tab, CR, LF, VT, FF).
    Space,
    /// Neither alphanumeric nor whitespace; every non-ASCII character.
    Sym,
    /// Any character.
    Any,
}

impl ClassView {
    #[inline]
    fn class(self) -> Class {
        match self {
            ClassView::Digit => Class::Digit,
            ClassView::Upper => Class::Upper,
            ClassView::Lower => Class::Lower,
            ClassView::Letter => Class::Letter,
            ClassView::Alnum => Class::Alnum,
            ClassView::Space => Class::Space,
            ClassView::Sym => Class::Sym,
            ClassView::Any => Class::Any,
        }
    }

    /// Membership test for an ASCII byte (`b < 0x80`). Non-ASCII lead
    /// bytes are routed through [`ClassView::accepts_multibyte`] instead.
    #[inline]
    pub fn contains_ascii(self, b: u8) -> bool {
        self.class().contains_ascii(b)
    }

    /// Does the class accept non-ASCII characters? Matching steps over a
    /// multi-byte character as a unit — lead byte plus its continuation
    /// bytes — never through its interior.
    #[inline]
    pub fn accepts_multibyte(self) -> bool {
        self.class().accepts_multibyte()
    }
}

/// One instruction of a compiled program, borrowed read-only through
/// [`CompiledPattern::instructions`].
///
/// This is the exact fused program the byte-level matcher executes —
/// downstream engines (the catalog-wide matcher in `av-match`) translate
/// these views into their own automata instead of re-deriving them from
/// pattern tokens, so both matchers agree by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstView<'p> {
    /// Match these exact pre-encoded UTF-8 bytes.
    Lit(&'p [u8]),
    /// Exactly `chars` characters of `class`.
    Fixed {
        /// Character class being scanned.
        class: ClassView,
        /// Exact character count.
        chars: u32,
    },
    /// `min_chars` or more characters of `class`.
    Var {
        /// Character class being scanned.
        class: ClassView,
        /// Minimum character count (≥ 1).
        min_chars: u32,
    },
    /// `<num>` = `\d+(\.\d+)?`.
    Num,
}

impl Inst {
    fn view(&self) -> InstView<'_> {
        fn view_class(c: Class) -> ClassView {
            match c {
                Class::Digit => ClassView::Digit,
                Class::Upper => ClassView::Upper,
                Class::Lower => ClassView::Lower,
                Class::Letter => ClassView::Letter,
                Class::Alnum => ClassView::Alnum,
                Class::Space => ClassView::Space,
                Class::Sym => ClassView::Sym,
                Class::Any => ClassView::Any,
            }
        }
        match self {
            Inst::Lit(b) => InstView::Lit(b),
            Inst::Fixed { class, chars } => InstView::Fixed {
                class: view_class(*class),
                chars: *chars,
            },
            Inst::Var { class, min_chars } => InstView::Var {
                class: view_class(*class),
                min_chars: *min_chars,
            },
            Inst::Num => InstView::Num,
        }
    }
}

/// Reusable working memory for [`CompiledPattern::matches_with`].
///
/// Holds the backtracking stack and the failure memo. Both retain their
/// capacity across calls, so a scratch reused over a stream of values makes
/// steady-state matching allocation-free. A fresh `MatchScratch` is two
/// empty `Vec`s — creating one does not allocate.
#[derive(Debug, Default, Clone)]
pub struct MatchScratch {
    stack: Vec<Frame>,
    memo: Vec<u64>,
}

/// A suspended branch instruction: which candidate end positions remain.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Instruction index.
    inst: usize,
    /// Byte position the instruction started at.
    pos: usize,
    /// `Var`: next candidate end, stepping down by one char per retry.
    /// `Num`: current integer-end candidate `ie`.
    a: usize,
    /// `Var`: smallest legal end (after `min_chars` chars); exhausted when
    /// `a < b`. `Num`: next fraction-end candidate for `ie`, 0 when none.
    b: usize,
}

/// Outcome of running the deterministic prefix from a state.
enum Step {
    /// The whole value was consumed by the whole program.
    Accept,
    /// Dead end.
    Reject,
    /// Reached a branch instruction at this state.
    Branch { inst: usize, pos: usize },
}

/// Where and why a failed match got furthest — the output of
/// [`CompiledPattern::explain`].
///
/// The *furthest-reached position* is the length in bytes of the longest
/// prefix of the value that is also a prefix of some string the pattern
/// accepts. Everything before it matched; the byte span starting there is
/// where the value departs from the pattern's language. All offsets lie on
/// `char` boundaries of the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchTrace {
    /// Index of the instruction that was being matched when the furthest
    /// position was reached. Equal to [`MatchTrace::num_insts`] when every
    /// instruction was satisfied and the failure is trailing input (the
    /// program expected the value to end).
    pub inst: usize,
    /// Number of instructions in the program.
    pub num_insts: usize,
    /// Byte offset of the furthest-reached position: `value[..failed_at]`
    /// is the matched prefix, and the mismatch starts at `failed_at`.
    pub failed_at: usize,
    /// End of the failing byte span: one character past `failed_at`, or
    /// `failed_at` itself when the value ended before the program did.
    pub span_end: usize,
    /// Human-readable description of what the failing instruction would
    /// have accepted (e.g. `exactly 2 digit characters`, `end of value`).
    pub expected: String,
}

impl MatchTrace {
    /// The prefix of `value` that matched (everything before the failure).
    pub fn matched_prefix<'v>(&self, value: &'v str) -> &'v str {
        &value[..self.failed_at]
    }

    /// The failing byte span — the first character the pattern could not
    /// accept (empty when the value ended before the program did).
    pub fn failing_span<'v>(&self, value: &'v str) -> &'v str {
        &value[self.failed_at..self.span_end]
    }
}

/// Running maximum of `(position, instruction)` over an explain search.
#[derive(Clone, Copy)]
struct TraceState {
    furthest: usize,
    inst: usize,
}

impl TraceState {
    /// Record that `inst` consumed input up to byte `pos`. Ties on position
    /// keep the latest instruction — the one deepest into the program is
    /// the most precise thing to report.
    #[inline]
    fn reach(&mut self, inst: usize, pos: usize) {
        if pos > self.furthest || (pos == self.furthest && inst > self.inst) {
            self.furthest = pos;
            self.inst = inst;
        }
    }
}

/// A [`Pattern`] lowered to a flat byte-matching program.
///
/// Compile once at inference time, then [`CompiledPattern::matches`] (or
/// [`CompiledPattern::matches_with`] with a caller-owned scratch) answers
/// `h ∈ P(v)` with no per-call allocation and no recursion.
///
/// ```
/// use av_pattern::{parse, CompiledPattern, MatchScratch};
///
/// let pattern = parse("<letter>{3} <digit>{2} <digit>{4}").unwrap();
/// let compiled = CompiledPattern::compile(&pattern);
/// assert!(compiled.matches("Mar 01 2019"));
/// assert!(!compiled.matches("Mar 1 2019"));
///
/// // Hot loops reuse one scratch across values.
/// let mut scratch = MatchScratch::default();
/// assert!(compiled.matches_with("Apr 30 2020", &mut scratch));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    insts: Box<[Inst]>,
    /// `min_tail[i]`: minimum bytes `insts[i..]` can accept (`min_tail[n]`
    /// = 0). Checked before running instruction `i` — the early prune.
    min_tail: Box<[usize]>,
    /// Branch ordinal per instruction (`usize::MAX` for deterministic
    /// instructions); memo rows exist only for branch instructions.
    branch_ord: Box<[usize]>,
    /// Number of branch instructions.
    nbranch: usize,
}

impl CompiledPattern {
    /// Lower `pattern` into a matching program.
    pub fn compile(pattern: &Pattern) -> CompiledPattern {
        let mut insts: Vec<Inst> = Vec::with_capacity(pattern.len());
        for t in pattern.tokens() {
            match t {
                Token::Lit(s) => insts.push(Inst::Lit(s.as_bytes().into())),
                Token::Num => insts.push(Inst::Num),
                Token::Digit(n) => push_class(&mut insts, Class::Digit, *n as u32, false),
                Token::Upper(n) => push_class(&mut insts, Class::Upper, *n as u32, false),
                Token::Lower(n) => push_class(&mut insts, Class::Lower, *n as u32, false),
                Token::Letter(n) => push_class(&mut insts, Class::Letter, *n as u32, false),
                Token::Alnum(n) => push_class(&mut insts, Class::Alnum, *n as u32, false),
                Token::Sym(n) => push_class(&mut insts, Class::Sym, *n as u32, false),
                Token::DigitPlus => push_class(&mut insts, Class::Digit, 1, true),
                Token::UpperPlus => push_class(&mut insts, Class::Upper, 1, true),
                Token::LowerPlus => push_class(&mut insts, Class::Lower, 1, true),
                Token::LetterPlus => push_class(&mut insts, Class::Letter, 1, true),
                Token::AlnumPlus => push_class(&mut insts, Class::Alnum, 1, true),
                Token::SymPlus => push_class(&mut insts, Class::Sym, 1, true),
                Token::SpacePlus => push_class(&mut insts, Class::Space, 1, true),
                Token::AnyPlus => push_class(&mut insts, Class::Any, 1, true),
            }
        }
        let mut min_tail = vec![0usize; insts.len() + 1];
        for i in (0..insts.len()).rev() {
            min_tail[i] = min_tail[i + 1] + insts[i].min_bytes();
        }
        let mut nbranch = 0usize;
        let branch_ord: Vec<usize> = insts
            .iter()
            .map(|inst| {
                if inst.is_branch() {
                    nbranch += 1;
                    nbranch - 1
                } else {
                    usize::MAX
                }
            })
            .collect();
        CompiledPattern {
            insts: insts.into_boxed_slice(),
            min_tail: min_tail.into_boxed_slice(),
            branch_ord: branch_ord.into_boxed_slice(),
            nbranch,
        }
    }

    /// Number of instructions in the program (≤ the pattern's token count;
    /// fusion shortens it).
    pub fn num_instructions(&self) -> usize {
        self.insts.len()
    }

    /// Iterate over the fused instruction program as read-only
    /// [`InstView`]s, in execution order.
    ///
    /// A value matches the pattern exactly when the instruction sequence
    /// consumes it entirely, so the views carry everything needed to build
    /// an equivalent automaton elsewhere (see the `av-match` crate).
    pub fn instructions(&self) -> impl ExactSizeIterator<Item = InstView<'_>> + '_ {
        self.insts.iter().map(Inst::view)
    }

    /// True when matching runs a single deterministic scan — no variadic
    /// or `<num>` instruction, hence no backtracking, memo, or stack.
    pub fn is_deterministic(&self) -> bool {
        self.nbranch == 0
    }

    /// Does the program accept the *entire* `value`?
    ///
    /// Deterministic programs match with no working memory at all; for
    /// backtracking programs a thread-local [`MatchScratch`] is reused, so
    /// steady-state calls are allocation-free either way. Hot loops that
    /// want the scratch under their own control use
    /// [`CompiledPattern::matches_with`].
    pub fn matches(&self, value: &str) -> bool {
        if self.nbranch == 0 {
            // The scratch is untouched on this path, and a fresh one does
            // not allocate.
            return self.matches_with(value, &mut MatchScratch::default());
        }
        thread_local! {
            static SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::default());
        }
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.matches_with(value, &mut scratch),
            // Unreachable in practice (matching never re-enters), but a
            // fallback beats a panic.
            Err(_) => self.matches_with(value, &mut MatchScratch::default()),
        })
    }

    /// [`CompiledPattern::matches`] with caller-owned working memory.
    ///
    /// The scratch keeps its buffers between calls; reusing one across a
    /// stream of values makes every call after the first allocation-free.
    pub fn matches_with(&self, value: &str, scratch: &mut MatchScratch) -> bool {
        let bytes = value.as_bytes();
        if bytes.len() < self.min_tail[0] {
            return false;
        }
        // Entry: run the deterministic prefix.
        let (inst, pos) = match self.advance(bytes, 0, 0) {
            Step::Accept => return true,
            Step::Reject => return false,
            Step::Branch { inst, pos } => (inst, pos),
        };
        // With a single branch instruction no (inst, pos) state can be
        // reached twice, so the failure memo would be pure overhead.
        let use_memo = self.nbranch > 1;
        if use_memo {
            let states = self.nbranch * (bytes.len() + 1);
            scratch.memo.clear();
            scratch.memo.resize(states.div_ceil(64), 0);
        }
        scratch.stack.clear();
        scratch.stack.push(self.init_frame(bytes, inst, pos));

        while let Some(mut frame) = scratch.stack.pop() {
            let Some(end) = self.next_candidate(bytes, &mut frame) else {
                // Every split of this branch state failed.
                if use_memo {
                    let key = self.branch_ord[frame.inst] * (bytes.len() + 1) + frame.pos;
                    scratch.memo[key / 64] |= 1 << (key % 64);
                }
                continue;
            };
            scratch.stack.push(frame); // updated cursor, back on the stack
            match self.advance(bytes, frame.inst + 1, end) {
                Step::Accept => return true,
                Step::Reject => {}
                Step::Branch { inst, pos } => {
                    let failed = use_memo && {
                        let key = self.branch_ord[inst] * (bytes.len() + 1) + pos;
                        scratch.memo[key / 64] & (1 << (key % 64)) != 0
                    };
                    if !failed {
                        scratch.stack.push(self.init_frame(bytes, inst, pos));
                    }
                }
            }
        }
        false
    }

    /// Run deterministic instructions from `(inst, pos)` until the program
    /// ends, a dead end, or a branch instruction.
    fn advance(&self, bytes: &[u8], mut inst: usize, mut pos: usize) -> Step {
        loop {
            if inst == self.insts.len() {
                return if pos == bytes.len() {
                    Step::Accept
                } else {
                    Step::Reject
                };
            }
            if bytes.len() - pos < self.min_tail[inst] {
                return Step::Reject;
            }
            match &self.insts[inst] {
                Inst::Lit(lit) => {
                    if bytes[pos..].starts_with(lit) {
                        pos += lit.len();
                    } else {
                        return Step::Reject;
                    }
                }
                Inst::Fixed { class, chars } => {
                    for _ in 0..*chars {
                        match eat_char(bytes, pos, *class) {
                            Some(next) => pos = next,
                            None => return Step::Reject,
                        }
                    }
                }
                Inst::Var { .. } | Inst::Num => return Step::Branch { inst, pos },
            }
            inst += 1;
        }
    }

    /// Build the candidate-end cursor for a branch instruction at `pos`.
    fn init_frame(&self, bytes: &[u8], inst: usize, pos: usize) -> Frame {
        match &self.insts[inst] {
            Inst::Var { class, min_chars } => {
                // Greedy scan of the maximal run, remembering the byte end
                // after the first `min_chars` characters.
                let mut count = 0u32;
                let mut p = pos;
                let mut min_end = pos;
                while let Some(next) = eat_char(bytes, p, *class) {
                    count += 1;
                    p = next;
                    if count == *min_chars {
                        min_end = p;
                    }
                }
                if count < *min_chars {
                    Frame {
                        inst,
                        pos,
                        a: 0,
                        b: 1,
                    } // a < b: no candidates
                } else {
                    Frame {
                        inst,
                        pos,
                        a: p,
                        b: min_end,
                    }
                }
            }
            Inst::Num => {
                let mut ie = pos;
                while ie < bytes.len() && bytes[ie].is_ascii_digit() {
                    ie += 1;
                }
                if ie == pos {
                    // `a <= pos`: no candidates.
                    Frame {
                        inst,
                        pos,
                        a: pos,
                        b: 0,
                    }
                } else {
                    Frame {
                        inst,
                        pos,
                        a: ie,
                        b: frac_end(bytes, ie),
                    }
                }
            }
            _ => unreachable!("init_frame on a deterministic instruction"),
        }
    }

    /// Next candidate end position for a suspended branch, longest first
    /// (same exploration semantics as the reference matcher; the accepted
    /// language does not depend on the order).
    fn next_candidate(&self, bytes: &[u8], frame: &mut Frame) -> Option<usize> {
        match &self.insts[frame.inst] {
            Inst::Var { .. } => {
                if frame.a < frame.b {
                    return None;
                }
                let end = frame.a;
                // Step back to the previous char boundary; `end >= b >= 1`
                // and the run starts at a boundary, so this never
                // underflows below `frame.pos`.
                let mut p = end - 1;
                while bytes[p] & 0xC0 == 0x80 {
                    p -= 1;
                }
                frame.a = p;
                Some(end)
            }
            Inst::Num => {
                // Candidates per integer end `ie` (descending): fraction
                // ends `fe ..= ie+2` first, then `ie` itself.
                if frame.a <= frame.pos {
                    return None;
                }
                if frame.b != 0 {
                    let end = frame.b;
                    frame.b = if frame.b > frame.a + 2 {
                        frame.b - 1
                    } else {
                        0
                    };
                    return Some(end);
                }
                let end = frame.a;
                frame.a -= 1;
                if frame.a > frame.pos {
                    frame.b = frac_end(bytes, frame.a);
                }
                Some(end)
            }
            _ => unreachable!("next_candidate on a deterministic instruction"),
        }
    }

    /// Explain why `value` does not match: the furthest-reached
    /// instruction, the failing byte span, and (via
    /// [`MatchTrace::matched_prefix`]) the prefix that did match. Returns
    /// `None` exactly when [`CompiledPattern::matches`] returns true.
    ///
    /// This is the cold half of the matcher: callers run it only after a
    /// failed `matches`, so it trades the minimum-width prune for exact
    /// partial-progress tracking (a pruned branch may still hold the
    /// deepest partial match). The furthest-reached position is the longest
    /// prefix of `value` that is also a prefix of some accepted string —
    /// the same quantity [`crate::furthest_mismatch`] computes on the
    /// reference matcher, which pins this implementation in proptests.
    ///
    /// ```
    /// use av_pattern::{parse, CompiledPattern};
    ///
    /// let compiled = CompiledPattern::compile(&parse("<letter>{3} <digit>{2} <digit>{4}").unwrap());
    /// let trace = compiled.explain("Mar 1 2019").unwrap();
    /// assert_eq!(trace.matched_prefix("Mar 1 2019"), "Mar 1");
    /// assert_eq!(trace.failing_span("Mar 1 2019"), " ");
    /// assert!(compiled.explain("Mar 01 2019").is_none());
    /// ```
    pub fn explain(&self, value: &str) -> Option<MatchTrace> {
        thread_local! {
            static SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::default());
        }
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.explain_with(value, &mut scratch),
            Err(_) => self.explain_with(value, &mut MatchScratch::default()),
        })
    }

    /// [`CompiledPattern::explain`] with caller-owned working memory (the
    /// same [`MatchScratch`] the hot path already carries).
    pub fn explain_with(&self, value: &str, scratch: &mut MatchScratch) -> Option<MatchTrace> {
        let bytes = value.as_bytes();
        let mut tr = TraceState {
            furthest: 0,
            inst: 0,
        };
        if self.explain_search(bytes, scratch, &mut tr) {
            return None;
        }
        let span_end = match bytes.get(tr.furthest) {
            Some(&b) if b < 0x80 => tr.furthest + 1,
            Some(&b) => tr.furthest + utf8_len(b),
            None => tr.furthest,
        };
        Some(MatchTrace {
            inst: tr.inst,
            num_insts: self.insts.len(),
            failed_at: tr.furthest,
            span_end,
            expected: self.describe_inst(tr.inst),
        })
    }

    /// What the instruction at `idx` accepts, in words; `idx == num_insts`
    /// describes the implicit end-of-value requirement.
    pub fn describe_inst(&self, idx: usize) -> String {
        if idx == self.insts.len() {
            return "end of value".to_string();
        }
        match &self.insts[idx] {
            Inst::Lit(lit) => {
                let text = std::str::from_utf8(lit).expect("literals are encoded from &str");
                format!("literal {text:?}")
            }
            Inst::Fixed { class, chars } => {
                format!("exactly {chars} {} character(s)", class.name())
            }
            Inst::Var { class, min_chars } => {
                format!("{min_chars} or more {} characters", class.name())
            }
            Inst::Num => "a number (<num>)".to_string(),
        }
    }

    /// Edit distance between two instruction programs: the number of
    /// instruction insertions, deletions, and substitutions turning one
    /// program into the other. Used to rank "nearest rule" suggestions —
    /// two rules whose programs differ by one fused scan are close, a
    /// dictionary column and a timestamp are not.
    pub fn distance(&self, other: &CompiledPattern) -> usize {
        let (a, b) = (&self.insts[..], &other.insts[..]);
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0usize; b.len() + 1];
        for (i, ai) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, bj) in b.iter().enumerate() {
                let sub = prev[j] + usize::from(ai != bj);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    /// The explain-mode search: same exploration order as
    /// [`CompiledPattern::matches_with`], but every byte of partial
    /// progress is recorded in `tr`, and the minimum-width prune is off —
    /// a branch that cannot complete can still carry the furthest reach.
    fn explain_search(
        &self,
        bytes: &[u8],
        scratch: &mut MatchScratch,
        tr: &mut TraceState,
    ) -> bool {
        let (inst, pos) = match self.explain_advance(bytes, 0, 0, tr) {
            Step::Accept => return true,
            Step::Reject => return false,
            Step::Branch { inst, pos } => (inst, pos),
        };
        let use_memo = self.nbranch > 1;
        if use_memo {
            let states = self.nbranch * (bytes.len() + 1);
            scratch.memo.clear();
            scratch.memo.resize(states.div_ceil(64), 0);
        }
        scratch.stack.clear();
        scratch
            .stack
            .push(self.explain_init_frame(bytes, inst, pos, tr));

        while let Some(mut frame) = scratch.stack.pop() {
            let Some(end) = self.next_candidate(bytes, &mut frame) else {
                if use_memo {
                    let key = self.branch_ord[frame.inst] * (bytes.len() + 1) + frame.pos;
                    scratch.memo[key / 64] |= 1 << (key % 64);
                }
                continue;
            };
            scratch.stack.push(frame);
            match self.explain_advance(bytes, frame.inst + 1, end, tr) {
                Step::Accept => return true,
                Step::Reject => {}
                Step::Branch { inst, pos } => {
                    let failed = use_memo && {
                        let key = self.branch_ord[inst] * (bytes.len() + 1) + pos;
                        scratch.memo[key / 64] & (1 << (key % 64)) != 0
                    };
                    if !failed {
                        scratch
                            .stack
                            .push(self.explain_init_frame(bytes, inst, pos, tr));
                    }
                }
            }
        }
        false
    }

    /// [`CompiledPattern::advance`] with reach tracking and no prune.
    /// Literal and fixed-class instructions record partial progress: the
    /// bytes they consumed before the mismatch are part of a prefix of some
    /// accepted string, so they count toward the furthest reach.
    fn explain_advance(
        &self,
        bytes: &[u8],
        mut inst: usize,
        mut pos: usize,
        tr: &mut TraceState,
    ) -> Step {
        loop {
            tr.reach(inst, pos);
            if inst == self.insts.len() {
                return if pos == bytes.len() {
                    Step::Accept
                } else {
                    Step::Reject
                };
            }
            match &self.insts[inst] {
                Inst::Lit(lit) => {
                    let rest = &bytes[pos..];
                    let common = lit
                        .iter()
                        .zip(rest.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                    if common == lit.len() {
                        pos += common;
                    } else {
                        // Partial literal progress, rounded down to a char
                        // boundary of the value (the shared bytes may end
                        // inside a multi-byte character).
                        let mut p = pos + common;
                        while p < bytes.len() && bytes[p] & 0xC0 == 0x80 {
                            p -= 1;
                        }
                        tr.reach(inst, p);
                        return Step::Reject;
                    }
                }
                Inst::Fixed { class, chars } => {
                    for _ in 0..*chars {
                        match eat_char(bytes, pos, *class) {
                            Some(next) => {
                                pos = next;
                                tr.reach(inst, pos);
                            }
                            None => return Step::Reject,
                        }
                    }
                }
                Inst::Var { .. } | Inst::Num => return Step::Branch { inst, pos },
            }
            inst += 1;
        }
    }

    /// [`CompiledPattern::init_frame`] with reach tracking: the greedy scan
    /// of a variadic run (and `<num>`'s integer/fraction scans) is itself
    /// partial progress, even when too short to yield any candidate.
    fn explain_init_frame(
        &self,
        bytes: &[u8],
        inst: usize,
        pos: usize,
        tr: &mut TraceState,
    ) -> Frame {
        match &self.insts[inst] {
            Inst::Var { class, min_chars } => {
                let mut count = 0u32;
                let mut p = pos;
                let mut min_end = pos;
                while let Some(next) = eat_char(bytes, p, *class) {
                    count += 1;
                    p = next;
                    if count == *min_chars {
                        min_end = p;
                    }
                }
                tr.reach(inst, p);
                if count < *min_chars {
                    Frame {
                        inst,
                        pos,
                        a: 0,
                        b: 1,
                    }
                } else {
                    Frame {
                        inst,
                        pos,
                        a: p,
                        b: min_end,
                    }
                }
            }
            Inst::Num => {
                let mut ie = pos;
                while ie < bytes.len() && bytes[ie].is_ascii_digit() {
                    ie += 1;
                }
                if ie == pos {
                    Frame {
                        inst,
                        pos,
                        a: pos,
                        b: 0,
                    }
                } else {
                    tr.reach(inst, ie);
                    // "123." is a prefix of "123.4": the dot (and any
                    // fraction digits) extend the reach even when no legal
                    // candidate end comes of it.
                    if ie < bytes.len() && bytes[ie] == b'.' {
                        let mut fe = ie + 1;
                        while fe < bytes.len() && bytes[fe].is_ascii_digit() {
                            fe += 1;
                        }
                        tr.reach(inst, fe);
                    }
                    Frame {
                        inst,
                        pos,
                        a: ie,
                        b: frac_end(bytes, ie),
                    }
                }
            }
            _ => unreachable!("explain_init_frame on a deterministic instruction"),
        }
    }
}

/// Longest fraction end after integer end `ie` (`'.'` plus ≥ 1 digit), or
/// 0 when the position has no legal fraction.
fn frac_end(bytes: &[u8], ie: usize) -> usize {
    if ie < bytes.len() && bytes[ie] == b'.' {
        let mut fe = ie + 1;
        while fe < bytes.len() && bytes[fe].is_ascii_digit() {
            fe += 1;
        }
        if fe >= ie + 2 {
            return fe;
        }
    }
    0
}

/// Push a class token, fusing with a trailing instruction of the same
/// class: fixed+fixed adds widths, fixed+variadic (either order) and
/// variadic+variadic fold into one `Var` with the summed minimum — the
/// concatenation of same-class tokens accepts exactly "total width" (or
/// "total minimum or more") characters of that class.
fn push_class(insts: &mut Vec<Inst>, class: Class, n: u32, variadic: bool) {
    enum Fused {
        No,
        Done,
        ToVar(u32),
    }
    let fused = match insts.last_mut() {
        Some(Inst::Fixed { class: c, chars }) if *c == class => {
            if variadic {
                Fused::ToVar(*chars + n)
            } else {
                *chars += n;
                Fused::Done
            }
        }
        Some(Inst::Var {
            class: c,
            min_chars,
        }) if *c == class => {
            *min_chars += n;
            Fused::Done
        }
        _ => Fused::No,
    };
    match fused {
        Fused::Done => {}
        Fused::ToVar(min_chars) => {
            *insts.last_mut().expect("fused with last") = Inst::Var { class, min_chars };
        }
        Fused::No => insts.push(if variadic {
            Inst::Var {
                class,
                min_chars: n,
            }
        } else {
            Inst::Fixed { class, chars: n }
        }),
    }
}

impl Pattern {
    /// Lower this pattern into a [`CompiledPattern`] program.
    pub fn compile(&self) -> CompiledPattern {
        CompiledPattern::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::matches;
    use crate::parser::parse;

    fn check_both(pattern: &Pattern, value: &str) -> bool {
        let compiled = CompiledPattern::compile(pattern);
        let byte_verdict = compiled.matches(value);
        let mut scratch = MatchScratch::default();
        assert_eq!(
            byte_verdict,
            compiled.matches_with(value, &mut scratch),
            "scratch path diverged on {pattern} vs {value:?}"
        );
        assert_eq!(
            byte_verdict,
            matches(pattern, value),
            "compiled diverged from reference on {pattern} vs {value:?}"
        );
        byte_verdict
    }

    #[test]
    fn empty_pattern_matches_only_empty_string() {
        assert!(check_both(&Pattern::empty(), ""));
        assert!(!check_both(&Pattern::empty(), "x"));
    }

    #[test]
    fn instruction_views_expose_the_fused_program() {
        let p = parse("<digit>{2}<digit>{4}-<upper>+<num>").unwrap();
        let compiled = CompiledPattern::compile(&p);
        let views: Vec<InstView<'_>> = compiled.instructions().collect();
        assert_eq!(
            views,
            vec![
                InstView::Fixed {
                    class: ClassView::Digit,
                    chars: 6
                },
                InstView::Lit(b"-"),
                InstView::Var {
                    class: ClassView::Upper,
                    min_chars: 1
                },
                InstView::Num,
            ]
        );
        assert_eq!(compiled.instructions().len(), compiled.num_instructions());
        assert!(ClassView::Digit.contains_ascii(b'7'));
        assert!(!ClassView::Digit.contains_ascii(b'x'));
        assert!(ClassView::Sym.accepts_multibyte());
        assert!(!ClassView::Alnum.accepts_multibyte());
    }

    #[test]
    fn paper_validation_patterns() {
        let p = parse("<letter>{3} <digit>{2} <digit>{4}").unwrap();
        for v in ["Mar 01 2019", "Oct 11 2020"] {
            assert!(check_both(&p, v), "{v}");
        }
        assert!(!check_both(&p, "March 01 2019"));
        assert!(!check_both(&p, "Mar 1 2019"));
        assert!(!check_both(&p, "Mar 01 2019 "));

        let p2 = parse("<digit>+/<digit>{2}/<digit>{4} <digit>+:<digit>{2}:<digit>{2} <letter>{2}")
            .unwrap();
        assert!(check_both(&p2, "9/07/2019 12:01:32 PM"));
        assert!(!check_both(&p2, "9/07/2019 12:01:32"));
    }

    #[test]
    fn num_backtracking() {
        let p = parse("<num>").unwrap();
        for (v, want) in [
            ("9", true),
            ("0.1", true),
            ("12345.6789", true),
            (".5", false),
            ("5.", false),
            ("1.2.3", false),
            ("", false),
        ] {
            assert_eq!(check_both(&p, v), want, "{v:?}");
        }
        // <num> must give characters back to the rest of the pattern.
        assert!(check_both(&parse("<num>:<digit>+").unwrap(), "9:07"));
        assert!(check_both(&parse("<num>.<digit>{2}").unwrap(), "3.14"));
        assert!(check_both(&parse("<num>.<digit>{2}").unwrap(), "1.5.99"));
    }

    #[test]
    fn same_class_tokens_fuse() {
        let p = Pattern::new(vec![Token::Digit(2), Token::Digit(3)]);
        let c = CompiledPattern::compile(&p);
        assert_eq!(c.num_instructions(), 1);
        assert!(c.is_deterministic());
        assert!(check_both(&p, "12345"));
        assert!(!check_both(&p, "1234"));

        let p = Pattern::new(vec![Token::Digit(2), Token::DigitPlus, Token::DigitPlus]);
        let c = CompiledPattern::compile(&p);
        assert_eq!(c.num_instructions(), 1);
        assert!(!check_both(&p, "123"));
        assert!(check_both(&p, "1234"));
        assert!(check_both(&p, "123456789"));

        // Different classes do not fuse: <digit>{2}<alnum>+ ≠ <alnum>{3+}.
        let p = Pattern::new(vec![Token::Digit(2), Token::AlnumPlus]);
        assert_eq!(CompiledPattern::compile(&p).num_instructions(), 2);
        assert!(check_both(&p, "12ab"));
        assert!(!check_both(&p, "ab12"));
    }

    #[test]
    fn variadic_splits_match_reference() {
        let p = Pattern::new(vec![Token::AlnumPlus, Token::lit("-"), Token::AlnumPlus]);
        assert!(check_both(&p, "a1-b2"));
        assert!(!check_both(&p, "a-b-c")); // the trailing "-c" has no home
        assert!(!check_both(&p, "-ab"));
        let sym = Pattern::new(vec![Token::SymPlus, Token::lit("-"), Token::AlnumPlus]);
        assert!(check_both(&sym, "--a")); // <sym>+ must give back the "-"
        assert!(!check_both(&sym, "-a"));
        let p2 = Pattern::new(vec![Token::AnyPlus, Token::lit("!")]);
        assert!(check_both(&p2, "anything!"));
        assert!(!check_both(&p2, "anything"));
        assert!(!check_both(&p2, "!"));
    }

    #[test]
    fn unicode_values_stay_on_char_boundaries() {
        // Non-ASCII characters are symbols (CharClass::of), multi-byte in
        // UTF-8; <sym> widths count characters, not bytes.
        let sym2 = Pattern::new(vec![Token::Sym(2)]);
        assert!(check_both(&sym2, "é°"));
        assert!(!check_both(&sym2, "é"));
        assert!(!check_both(&sym2, "éa"));
        let p = Pattern::new(vec![Token::SymPlus, Token::lit("x"), Token::SymPlus]);
        assert!(check_both(&p, "éx✓"));
        assert!(check_both(&p, "…x—"));
        assert!(!check_both(&p, "…x"));
        // ASCII classes reject multi-byte characters outright.
        assert!(!check_both(&Pattern::new(vec![Token::LetterPlus]), "ré"));
        // <any>+ splits across multi-byte characters without slicing them.
        let any2 = Pattern::new(vec![Token::AnyPlus, Token::AnyPlus]);
        assert!(check_both(&any2, "é✓"));
        assert!(!check_both(&any2, "é"));
    }

    #[test]
    fn min_width_pruning_rejects_short_values_early() {
        let p = parse("<digit>{4}-<digit>{2}-<digit>{2}").unwrap();
        let c = CompiledPattern::compile(&p);
        assert!(c.is_deterministic());
        assert!(!c.matches("2019-"));
        assert!(c.matches("2019-07-27"));
        assert!(!c.matches("2019-07-271"));
    }

    #[test]
    fn pathological_adjacent_variadics_fuse_flat() {
        // The reference matcher needs its memo for this; fusion makes it a
        // single bounded scan here.
        let p = Pattern::new(vec![Token::AnyPlus; 12]);
        let c = CompiledPattern::compile(&p);
        assert_eq!(c.num_instructions(), 1);
        let long = "x".repeat(200);
        assert!(check_both(&p, &long));
        let p2 = Pattern::new(
            std::iter::repeat_n(Token::AnyPlus, 12)
                .chain([Token::lit("!")])
                .collect::<Vec<_>>(),
        );
        assert!(!check_both(&p2, &long));
    }

    #[test]
    fn memo_engages_on_multi_branch_programs() {
        // Two <num> tokens with a separator: both branch, memo on.
        let p = parse("<num>,<num>").unwrap();
        let c = CompiledPattern::compile(&p);
        assert_eq!(c.num_instructions(), 3);
        assert!(!c.is_deterministic());
        assert!(check_both(&p, "1.5,2.25"));
        assert!(check_both(&p, "1,2"));
        assert!(!check_both(&p, "1,2,"));
        assert!(!check_both(&p, "1.,2"));
    }

    #[test]
    fn explain_reports_failing_span_and_prefix() {
        let p = parse("<letter>{3} <digit>{2} <digit>{4}").unwrap();
        let c = CompiledPattern::compile(&p);
        assert!(c.explain("Mar 01 2019").is_none());

        // "Mar 1 2019": the digit pair matched "1 "? No — "1" then the
        // space fails the 2-char digit scan at byte 5.
        let t = c.explain("Mar 1 2019").unwrap();
        assert_eq!(t.failed_at, 5);
        assert_eq!(t.matched_prefix("Mar 1 2019"), "Mar 1");
        assert_eq!(t.failing_span("Mar 1 2019"), " ");
        assert!(t.expected.contains("digit"), "{}", t.expected);

        // Trailing input: the program finished, the value did not.
        let t = c.explain("Mar 01 2019 ").unwrap();
        assert_eq!(t.failed_at, 11);
        assert_eq!(t.span_end, 12);
        assert_eq!(t.inst, t.num_insts);
        assert_eq!(t.expected, "end of value");

        // Too short: reach ends where the value does, span is empty.
        let t = c.explain("Mar 01 20").unwrap();
        assert_eq!(t.failed_at, 9);
        assert_eq!(t.span_end, 9);
        assert_eq!(t.failing_span("Mar 01 20"), "");
    }

    #[test]
    fn explain_tracks_partial_literal_and_num_progress() {
        let p = parse("session-<digit>{4}").unwrap();
        let c = CompiledPattern::compile(&p);
        let t = c.explain("session_0001").unwrap();
        assert_eq!(t.matched_prefix("session_0001"), "session");
        assert_eq!(t.failing_span("session_0001"), "_");

        // "5." is a prefix of "5.1": the dot extends the reach.
        let num = CompiledPattern::compile(&parse("<num>").unwrap());
        let t = num.explain("5.").unwrap();
        assert_eq!(t.failed_at, 2);
        let t = num.explain("5.x").unwrap();
        assert_eq!(t.failed_at, 2);
        assert_eq!(t.failing_span("5.x"), "x");
    }

    #[test]
    fn explain_stays_on_char_boundaries() {
        let p = Pattern::new(vec![Token::lit("é"), Token::Digit(1)]);
        let c = CompiledPattern::compile(&p);
        // 'è' shares its lead byte with 'é': the partial literal progress
        // must round down to the char boundary at 0.
        let t = c.explain("è1").unwrap();
        assert_eq!(t.failed_at, 0);
        assert_eq!(t.failing_span("è1"), "è");
        let t = c.explain("éx").unwrap();
        assert_eq!(t.failed_at, 2);
        assert_eq!(t.failing_span("éx"), "x");
    }

    #[test]
    fn explain_searches_past_the_min_width_prune() {
        // matches() rejects "abc1" on length alone; explain still finds
        // the deepest partial match (the whole value is a valid prefix).
        let p = Pattern::new(vec![Token::AnyPlus, Token::Digit(4)]);
        let c = CompiledPattern::compile(&p);
        assert!(!c.matches("abc1"));
        let t = c.explain("abc1").unwrap();
        assert_eq!(t.failed_at, 4);
        assert_eq!(t.span_end, 4);
    }

    #[test]
    fn explain_none_iff_matches() {
        let patterns = [
            parse("<letter>{3} <digit>{2} <digit>{4}").unwrap(),
            parse("<num>,<num>").unwrap(),
            Pattern::empty(),
            Pattern::new(vec![Token::AnyPlus]),
        ];
        let values = ["Mar 01 2019", "1.5,2", "", "x", "Mar 01 2019 ", "1,2,"];
        for p in &patterns {
            let c = CompiledPattern::compile(p);
            for v in values {
                assert_eq!(c.explain(v).is_none(), c.matches(v), "{p} ~ {v:?}");
            }
        }
    }

    #[test]
    fn program_distance_is_an_edit_distance() {
        let date = CompiledPattern::compile(&parse("<letter>{3} <digit>{2} <digit>{4}").unwrap());
        let date2 = CompiledPattern::compile(&parse("<letter>{3} <digit>{2} <digit>{4}").unwrap());
        let long = CompiledPattern::compile(&parse("<letter>+ <digit>{2} <digit>{4}").unwrap());
        let id = CompiledPattern::compile(&parse("session-<digit>{4}").unwrap());
        assert_eq!(date.distance(&date2), 0);
        assert_eq!(date.distance(&long), 1); // one substituted instruction
        assert_eq!(date.distance(&long), long.distance(&date));
        assert!(date.distance(&id) > date.distance(&long));
        let empty = CompiledPattern::compile(&Pattern::empty());
        assert_eq!(empty.distance(&date), date.num_instructions());
    }

    #[test]
    fn scratch_reuse_across_values() {
        let p = parse("<digit>+:<digit>{2}").unwrap();
        let c = CompiledPattern::compile(&p);
        let mut scratch = MatchScratch::default();
        for i in 0..50 {
            let good = format!("{}:{:02}", i, i % 60);
            assert!(c.matches_with(&good, &mut scratch), "{good}");
            assert!(!c.matches_with("drift", &mut scratch));
        }
    }
}
