//! # av-pattern — the Auto-Validate pattern language
//!
//! The pattern language of *Auto-Validate: Unsupervised Data Validation
//! Using Data-Domain Patterns Inferred from Data Lakes* (SIGMOD 2021, §2.1).
//!
//! A [`Pattern`] is a sequence of [`Token`]s drawn from a string
//! generalization hierarchy (Fig. 4 of the paper): literals at the leaves,
//! class tokens like `<digit>{2}`, `<letter>+`, `<num>` above them, and the
//! root `<any>+`. The crate provides:
//!
//! * [`tokenize`] — the coarse lexer splitting values into same-class runs
//!   ([`Run`]s are slices of the input — tokenization allocates no text);
//! * [`matches()`](fn@matches) — full-string pattern matching (`h ∈ P(v)` at
//!   test time), the character-level reference matcher used as the oracle;
//! * [`CompiledPattern`] — patterns lowered once into flat byte-level
//!   matching programs (fused scans, pre-encoded literals, explicit-stack
//!   backtracking) whose steady-state [`CompiledPattern::matches`] /
//!   [`CompiledPattern::matches_with`] calls allocate nothing — the matcher
//!   every hot validation path in the workspace runs on;
//! * [`analyze_column`] / [`hypothesis_space`] / [`patterns_of_value`] —
//!   Algorithm 1: coarse grouping plus per-position drill-down, producing
//!   `P(v)`, `P(D)` and `H(C)`;
//! * [`parse`] — the inverse of `Display`, for persisting patterns.
//!
//! This crate is the zero-copy foundation of the workspace-wide `Validator`
//! API (`av_core`): every entry point takes borrowed `&str`-likes, so the
//! whole tokenize → hypothesis space → infer → validate pipeline runs
//! without an intermediate `Vec<String>`.
//!
//! ```
//! use av_pattern::{hypothesis_space, matches, tokenize, PatternConfig};
//!
//! // Borrowed values in; runs borrow straight back out of them.
//! let column = ["Mar 01 2019", "Mar 04 2019", "Mar 30 2019"];
//! assert_eq!(tokenize(column[0])[0].text, "Mar");
//!
//! let h = hypothesis_space(&column, &PatternConfig::default());
//! // Every hypothesis is consistent with every observed value…
//! assert!(h.iter().all(|p| column.iter().all(|v| matches(p, v))));
//! // …and the ideal validation pattern from the paper is among them.
//! let ideal = av_pattern::parse("<letter>{3} <digit>{2} <digit>{4}").unwrap();
//! assert!(h.contains(&ideal));
//! ```

mod analyze;
mod compile;
mod generalize;
mod matcher;
mod parser;
mod pattern;
mod token;
mod tokenize;

pub use analyze::{
    analyze_column, column_pattern_profile, hypothesis_space, merged_key, merged_token_count,
    patterns_of_value, stream_column_profile, BitSet, CoarseGroup, ColumnAnalysis, EnumScratch,
    PositionOptions, StreamedPattern, SupportedPattern,
};
pub use compile::{ClassView, CompiledPattern, InstView, MatchScratch, MatchTrace};
pub use generalize::{coarse_pattern, PatternConfig};
pub use matcher::{furthest_mismatch, matches};
pub use parser::{parse, ParseError};
pub use pattern::{fnv1a, FingerprintState, Pattern};
pub use token::{CharClass, Token};
pub use tokenize::{token_count, tokenize, Run};
