//! Parse the textual pattern form back into a [`Pattern`].
//!
//! The grammar is exactly what [`Pattern`]'s `Display` emits: class tokens
//! like `<digit>{2}`, `<letter>+`, `<num>`, `<any>+`, and literal characters
//! with `\` escaping `<`, `>` and `\`. Round-tripping
//! `parse(p.to_string()) == p` holds for all patterns whose adjacent literal
//! tokens are non-mergeable (the printer concatenates literals).

use crate::pattern::Pattern;
use crate::token::Token;
use std::fmt;

/// Error produced when a pattern string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a pattern string such as `"<letter>{3} <digit>{2} <digit>{4}"`.
///
/// Consecutive literal characters coalesce into a single `Lit` token, which
/// matches how the `Display` implementation prints patterns.
pub fn parse(input: &str) -> Result<Pattern, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens: Vec<Token> = Vec::new();
    let mut lit = String::new();
    let mut i = 0usize;

    let flush = |lit: &mut String, tokens: &mut Vec<Token>| {
        if !lit.is_empty() {
            tokens.push(Token::lit(std::mem::take(lit)));
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                if i + 1 >= bytes.len() {
                    return Err(ParseError {
                        offset: i,
                        message: "dangling escape".into(),
                    });
                }
                // Escapes are single ASCII chars in our printer.
                lit.push(bytes[i + 1] as char);
                i += 2;
            }
            b'<' => {
                let end = input[i..].find('>').map(|e| i + e).ok_or(ParseError {
                    offset: i,
                    message: "unterminated class token".into(),
                })?;
                let name = &input[i + 1..end];
                i = end + 1;
                // Suffix: '+' or '{n}' (or nothing, for <num>).
                enum Suffix {
                    Plus,
                    Fixed(u16),
                    None,
                }
                let suffix = if i < bytes.len() && bytes[i] == b'+' {
                    i += 1;
                    Suffix::Plus
                } else if i < bytes.len() && bytes[i] == b'{' {
                    let close = input[i..].find('}').map(|e| i + e).ok_or(ParseError {
                        offset: i,
                        message: "unterminated width".into(),
                    })?;
                    let n: u16 = input[i + 1..close].parse().map_err(|_| ParseError {
                        offset: i,
                        message: format!("bad width {:?}", &input[i + 1..close]),
                    })?;
                    i = close + 1;
                    Suffix::Fixed(n)
                } else {
                    Suffix::None
                };
                flush(&mut lit, &mut tokens);
                let tok = match (name, suffix) {
                    ("digit", Suffix::Fixed(n)) => Token::Digit(n),
                    ("digit", Suffix::Plus) => Token::DigitPlus,
                    ("num", Suffix::None) => Token::Num,
                    ("upper", Suffix::Fixed(n)) => Token::Upper(n),
                    ("upper", Suffix::Plus) => Token::UpperPlus,
                    ("lower", Suffix::Fixed(n)) => Token::Lower(n),
                    ("lower", Suffix::Plus) => Token::LowerPlus,
                    ("letter", Suffix::Fixed(n)) => Token::Letter(n),
                    ("letter", Suffix::Plus) => Token::LetterPlus,
                    ("alnum", Suffix::Fixed(n)) => Token::Alnum(n),
                    ("alnum", Suffix::Plus) => Token::AlnumPlus,
                    ("sym", Suffix::Fixed(n)) => Token::Sym(n),
                    ("sym", Suffix::Plus) => Token::SymPlus,
                    ("space", Suffix::Plus) => Token::SpacePlus,
                    ("any", Suffix::Plus) => Token::AnyPlus,
                    (other, _) => {
                        return Err(ParseError {
                            offset: i,
                            message: format!("unknown class token <{other}>"),
                        })
                    }
                };
                tokens.push(tok);
            }
            _ => {
                // Take one UTF-8 char as literal.
                let c = input[i..].chars().next().expect("non-empty remainder");
                lit.push(c);
                i += c.len_utf8();
            }
        }
    }
    flush(&mut lit, &mut tokens);
    Ok(Pattern::new(tokens))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_pattern() {
        let p = parse("<letter>{3} <digit>{2} <digit>{4}").unwrap();
        assert_eq!(
            p.tokens(),
            &[
                Token::Letter(3),
                Token::lit(" "),
                Token::Digit(2),
                Token::lit(" "),
                Token::Digit(4),
            ]
        );
    }

    #[test]
    fn roundtrip_display_parse() {
        let patterns = [
            "<num>/<num>",
            "<digit>+:<digit>{2}",
            "abc-<upper>{4}",
            "<any>+",
            "\\<escaped\\>",
            "",
            "<alnum>+_<sym>{2}<space>+x",
        ];
        for s in patterns {
            let p = parse(s).unwrap();
            let printed = p.to_string();
            let p2 = parse(&printed).unwrap();
            assert_eq!(p, p2, "roundtrip failed for {s:?}");
        }
    }

    #[test]
    fn adjacent_literals_coalesce() {
        let p = parse("ab").unwrap();
        assert_eq!(p.tokens(), &[Token::lit("ab")]);
    }

    #[test]
    fn errors() {
        assert!(parse("<bogus>+").is_err());
        assert!(parse("<digit>{x}").is_err());
        assert!(parse("<digit").is_err());
        assert!(parse("tail\\").is_err());
        // <num> takes no suffix; <num>{2} is an unknown combination.
        assert!(parse("<num>{2}").is_err());
    }

    #[test]
    fn unicode_literals() {
        let p = parse("é<digit>{1}").unwrap();
        assert_eq!(p.tokens()[0], Token::lit("é"));
    }
}
