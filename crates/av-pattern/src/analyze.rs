//! Column analysis: Algorithm 1 with support counting.
//!
//! The paper's pattern generation runs in two steps (Alg. 1): emit coarse
//! patterns, retain those with sufficient coverage, then drill each position
//! down the hierarchy, again retaining refinements with sufficient coverage.
//!
//! We implement this with **support bitsets**: values are grouped by their
//! *merged* coarse structure (adjacent digit/letter runs fused into one
//! alphanumeric segment, so hex/GUID-like domains whose strict run structure
//! varies per value still group together). Within a group every candidate
//! token at every position carries a bitset of the sampled values that
//! generate it, so for any enumerated pattern `p` we know exactly how many
//! values `v` have `p ∈ P(v)` — which is precisely the quantity behind the
//! impurity `Imp_D(p)` of Definition 1.

use crate::generalize::{for_each_run_option, PatternConfig, RunOption};
use crate::pattern::{FingerprintState, Pattern};
use crate::token::{CharClass, Token};
use crate::tokenize::{tokenize, Run};
use std::collections::HashMap;

/// A fixed-capacity bitset over the sampled values of one coarse group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Empty set over `len` slots.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Set slot `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Is slot `i` set?
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set slots.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection.
    pub fn and_assign(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Capacity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-dimension to `len` slots, all clear, reusing the allocation.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Overwrite with a copy of `other` (capacities must match); returns
    /// the number of set slots.
    pub fn copy_and_count(&mut self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words.copy_from_slice(&other.words);
        other.count()
    }

    /// Store `a & b` (capacities must match); returns the number of set
    /// slots — the fused intersect-and-count of the enumeration DFS.
    pub fn and_count(&mut self, a: &BitSet, b: &BitSet) -> usize {
        debug_assert_eq!(self.len, a.len);
        debug_assert_eq!(a.len, b.len);
        let mut count = 0usize;
        for (out, (x, y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            let w = x & y;
            *out = w;
            count += w.count_ones() as usize;
        }
        count
    }
}

/// Class of a merged (alnum-fused) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MergedClass {
    Alnum,
    Sym,
    Space,
}

/// A merged run: adjacent digit/letter runs fuse into one `Alnum` segment.
struct MergedRun<'a> {
    class: MergedClass,
    text: &'a str,
    subs: Vec<Run<'a>>,
}

/// Merge the strict runs of `value` into alnum/sym/space segments.
fn merged_runs(value: &str) -> Vec<MergedRun<'_>> {
    let runs = tokenize(value);
    let mut out: Vec<MergedRun<'_>> = Vec::with_capacity(runs.len());
    let mut offset = 0usize; // byte offset where the current run starts
    for run in runs {
        let end = offset + run.text.len();
        let class = merge_class(run.class);
        match out.last_mut() {
            Some(last) if last.class == MergedClass::Alnum && class == MergedClass::Alnum => {
                let start = end - last.text.len() - run.text.len();
                last.text = &value[start..end];
                last.subs.push(run);
            }
            _ => {
                out.push(MergedRun {
                    class,
                    text: &value[offset..end],
                    subs: vec![run],
                });
            }
        }
        offset = end;
    }
    out
}

/// The class-merge rule: digit/letter fuse into alnum.
#[inline]
fn merge_class(class: CharClass) -> MergedClass {
    match class {
        CharClass::Digit | CharClass::Letter => MergedClass::Alnum,
        CharClass::Symbol => MergedClass::Sym,
        CharClass::Space => MergedClass::Space,
    }
}

/// Merged class of a single character.
#[inline]
fn merged_class_of(c: char) -> MergedClass {
    merge_class(CharClass::of(c))
}

/// Number of merged tokens in a value — the effective position count of
/// the analyzer (adjacent digit/letter runs count once). This is the width
/// measure the τ token-limit applies to: hex/GUID-like values alternate
/// digit and letter runs and would absurdly exceed any strict-run limit
/// while having few *positions*. Counted by a direct character scan — the
/// offline indexer calls this for every corpus value, so it must not
/// materialize run vectors just to take their length.
pub fn merged_token_count(value: &str) -> usize {
    let mut count = 0usize;
    let mut cur: Option<MergedClass> = None;
    for c in value.chars() {
        let class = merged_class_of(c);
        if cur != Some(class) {
            count += 1;
            cur = Some(class);
        }
    }
    count
}

/// The merged coarse key of a value: one class token per merged run. Values
/// sharing a key are structurally compatible and analyzed together.
pub fn merged_key(value: &str) -> Pattern {
    let mut tokens: Vec<Token> = Vec::new();
    let mut cur: Option<MergedClass> = None;
    for c in value.chars() {
        let class = merged_class_of(c);
        if cur != Some(class) {
            tokens.push(match class {
                MergedClass::Alnum => Token::AlnumPlus,
                MergedClass::Sym => Token::SymPlus,
                MergedClass::Space => Token::SpacePlus,
            });
            cur = Some(class);
        }
    }
    Pattern::new(tokens)
}

/// Candidate tokens with support, for one (flattened) position.
///
/// Options are stored in **trim order**: when the enumeration cross-product
/// exceeds the configured cap, options are dropped from the *front*. The
/// order puts partial-support options first (lowest support earliest), then
/// full-support options from most expendable (`<any>+`, cross-class
/// `<alnum>` on pure positions) to least (the class's own tokens and
/// literal delimiters), so the patterns a validator actually wants survive
/// trimming the longest.
#[derive(Debug, Clone)]
pub struct PositionOptions {
    /// `(token, supporting sampled values)`, in trim order.
    pub options: Vec<(Token, BitSet)>,
}

/// Expendability rank used for trim ordering: smaller = dropped earlier when
/// the enumeration budget is exceeded. `full` says whether the option is
/// supported by every sampled value.
///
/// The ordering encodes what a validator needs most: partial-support
/// literals are noise (dropped first), `<any>+` and cross-class tokens are
/// rarely the chosen rule, full-support literals pin real constants, and the
/// class's own fixed/variadic tokens are kept longest — *including
/// partial-support fixed widths* (e.g. `<digit>{1}` on a column mixing 1-
/// and 2-digit hours), because those are exactly the narrow hypotheses whose
/// impurity evidence the corpus index must record (Fig. 6).
fn trim_rank(t: &Token, full: bool) -> u8 {
    match t {
        Token::Lit(_) if !full => 0,
        Token::AnyPlus => 1,
        Token::Alnum(_) if !full => 2,
        Token::Upper(_) | Token::Lower(_) if !full => 2,
        Token::UpperPlus | Token::LowerPlus if !full => 3,
        Token::Alnum(_) => 3,
        Token::AlnumPlus | Token::Num | Token::SymPlus => 4,
        Token::Lit(_) => 5,
        Token::Upper(_) | Token::Lower(_) | Token::UpperPlus | Token::LowerPlus => 6,
        Token::Digit(_) | Token::Letter(_) | Token::Sym(_) => 7,
        Token::DigitPlus | Token::LetterPlus | Token::SpacePlus => 8,
    }
}

/// One coarse group of a column.
#[derive(Debug, Clone)]
pub struct CoarseGroup {
    /// The merged coarse key shared by the group's values.
    pub key: Pattern,
    /// Number of column values in the group (all, not only sampled).
    pub count: usize,
    /// Number of values actually sampled into the bitsets.
    pub sample_size: usize,
    /// Flattened per-position candidate tokens with support.
    pub positions: Vec<PositionOptions>,
}

/// One enumerated pattern with its exact sample support.
#[derive(Debug, Clone)]
pub struct SupportedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Number of sampled values `v` with `pattern ∈ P(v)`.
    pub support: usize,
}

impl CoarseGroup {
    /// Upper bound on the cross-product size before trimming.
    pub fn num_combinations(&self) -> u128 {
        self.positions
            .iter()
            .map(|p| p.options.len() as u128)
            .product::<u128>()
            .max(1)
    }

    /// Enumerate fine-grained patterns with exact supports (step 2 of
    /// Algorithm 1). Patterns supported by zero sampled values and the
    /// trivial all-`<any>+` pattern are dropped. When the cross-product
    /// exceeds `cfg.max_patterns`, the most specific options are trimmed
    /// from the widest positions first.
    pub fn enumerate(&self, cfg: &PatternConfig) -> Vec<SupportedPattern> {
        self.enumerate_segment(0, self.positions.len(), 1, cfg)
    }

    /// Enumerate patterns for the position range `[start, end)` only,
    /// keeping patterns supported by at least `min_support` sampled values.
    /// This is the building block of the vertical-cut DP (§3): each segment
    /// `C[s, e]` is treated "just like a regular column cut from C".
    ///
    /// Materializing convenience wrapper over [`CoarseGroup::for_each_pattern`]
    /// — hot callers (the offline indexer, the vertical DP) should stream
    /// instead and materialize only the patterns they keep.
    pub fn enumerate_segment(
        &self,
        start: usize,
        end: usize,
        min_support: usize,
        cfg: &PatternConfig,
    ) -> Vec<SupportedPattern> {
        let mut out: Vec<SupportedPattern> = Vec::new();
        with_enum_scratch(|scratch| {
            self.for_each_pattern(start, end, min_support, cfg, scratch, |sp| {
                out.push(SupportedPattern {
                    pattern: sp.to_pattern(),
                    support: sp.support,
                });
            });
        });
        out
    }

    /// Stream the fine-grained patterns of the position range `[start, end)`
    /// without materializing them: the DFS threads an incremental FNV-1a
    /// fingerprint state ([`crate::FingerprintState`]) through every
    /// push/pop and intersects support bitsets into a depth-indexed scratch
    /// pool, so each emitted [`StreamedPattern`] costs zero allocations.
    /// Emission order, pruning, cap-trimming, and the exclusion of the
    /// trivial all-`<any>+` pattern are identical to
    /// [`CoarseGroup::enumerate_segment`].
    pub fn for_each_pattern<F: FnMut(&StreamedPattern<'_>)>(
        &self,
        start: usize,
        end: usize,
        min_support: usize,
        cfg: &PatternConfig,
        scratch: &mut EnumScratch,
        mut f: F,
    ) {
        assert!(
            start <= end && end <= self.positions.len(),
            "segment bounds"
        );
        if start == end {
            // The empty segment is supported by every sampled value.
            f(&StreamedPattern {
                fingerprint: FingerprintState::new().finish(),
                support: self.sample_size,
                token_len: 0,
                tokens: &[],
            });
            return;
        }
        let positions = &self.positions[start..end];
        let n = positions.len();
        let EnumScratch { levels, offsets } = scratch;
        // Trim to fit the cap: drop options from the *front* of the widest
        // position (options are stored in trim order) by advancing a
        // per-position offset — no option vector is ever copied.
        offsets.clear();
        offsets.resize(n, 0);
        loop {
            let product: u128 = positions
                .iter()
                .zip(offsets.iter())
                .map(|(p, off)| (p.options.len() - off) as u128)
                .product();
            if product <= cfg.max_patterns as u128 {
                break;
            }
            let widest = (0..n)
                .max_by_key(|&i| positions[i].options.len() - offsets[i])
                .expect("positions non-empty");
            if positions[widest].options.len() - offsets[widest] <= 1 {
                break;
            }
            offsets[widest] += 1;
        }
        // One support bitset per depth, reused across the whole group.
        if levels.len() < n {
            levels.resize_with(n, || BitSet::new(0));
        }
        for level in &mut levels[..n] {
            level.reset(self.sample_size);
        }
        let mut stack: Vec<&Token> = Vec::with_capacity(n);
        stream_rec(
            positions,
            offsets,
            &mut levels[..n],
            &mut stack,
            0,
            self.sample_size,
            FingerprintState::new(),
            0,
            0,
            min_support.max(1),
            &mut f,
        );
    }

    /// Only the patterns supported by *every* sampled value — the group's
    /// contribution to `H(C) = ∩ P(v)`. Enumerated directly with the
    /// full-support floor, so partially-supported branches are pruned at
    /// the first position instead of being generated and filtered.
    pub fn full_support_patterns(&self, cfg: &PatternConfig) -> Vec<Pattern> {
        self.enumerate_segment(0, self.positions.len(), self.sample_size, cfg)
            .into_iter()
            .map(|sp| sp.pattern)
            .collect()
    }
}

/// One pattern emitted by the streaming enumeration. The fingerprint,
/// support, and canonical token count are already computed; the raw token
/// stack is borrowed so display forms and [`Pattern`]s are materialized
/// only when a consumer actually wants them.
#[derive(Debug)]
pub struct StreamedPattern<'a> {
    /// Canonical FNV-1a fingerprint — identical to
    /// [`Pattern::fingerprint`] of [`StreamedPattern::to_pattern`].
    pub fingerprint: u64,
    /// Number of sampled values supporting the pattern.
    pub support: usize,
    /// Canonical token count (adjacent literals count once).
    pub token_len: usize,
    tokens: &'a [&'a Token],
}

impl StreamedPattern<'_> {
    /// Materialize the canonical [`Pattern`].
    pub fn to_pattern(&self) -> Pattern {
        Pattern::new(self.tokens.iter().map(|t| (*t).clone()).collect())
    }

    /// Sum of per-token specificity ranks, identical to
    /// [`Pattern::specificity`] of the materialized pattern (literal
    /// merging cannot change the sum — literals rank 0). Lets selection
    /// loops rank candidates without materializing them.
    pub fn specificity(&self) -> u32 {
        self.tokens.iter().map(|t| t.specificity() as u32).sum()
    }

    /// Materialize the display form without building a [`Pattern`].
    /// Adjacent literals render contiguously, so this equals
    /// `self.to_pattern().to_string()`.
    pub fn display(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for t in self.tokens {
            let _ = write!(s, "{t}");
        }
        s
    }
}

/// Reusable scratch for the streaming enumeration DFS: one support bitset
/// per depth plus the cap-trim offsets. One instance serves any number of
/// groups, columns, and segment calls; steady-state enumeration performs no
/// heap allocation besides one small pointer stack per segment.
#[derive(Debug, Default)]
pub struct EnumScratch {
    levels: Vec<BitSet>,
    offsets: Vec<usize>,
}

thread_local! {
    static ENUM_SCRATCH: std::cell::RefCell<EnumScratch> =
        std::cell::RefCell::new(EnumScratch::default());
}

/// Run `f` with the thread-local enumeration scratch (used by the
/// materializing wrappers; hot loops hold their own [`EnumScratch`]).
fn with_enum_scratch<R>(f: impl FnOnce(&mut EnumScratch) -> R) -> R {
    ENUM_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[allow(clippy::too_many_arguments)] // internal DFS: args are the per-depth saved state
fn stream_rec<'g, F: FnMut(&StreamedPattern<'_>)>(
    positions: &'g [PositionOptions],
    offsets: &[usize],
    levels: &mut [BitSet],
    stack: &mut Vec<&'g Token>,
    depth: usize,
    support: usize,
    st: FingerprintState,
    token_len: usize,
    any_count: usize,
    min_support: usize,
    f: &mut F,
) {
    if depth == positions.len() {
        // The all-`<any>+` pattern is the paper's excluded trivial `.*`.
        if any_count < depth {
            f(&StreamedPattern {
                fingerprint: st.finish(),
                support,
                token_len,
                tokens: stack,
            });
        }
        return;
    }
    for (token, bits) in &positions[depth].options[offsets[depth]..] {
        // Support only shrinks with depth, so pruning here is exact. The
        // child's support set is intersected into this depth's pooled
        // bitset and counted in the same pass — nothing is cloned and
        // nothing is recounted at emission.
        let count = if depth == 0 {
            levels[0].copy_and_count(bits)
        } else {
            let (parents, children) = levels.split_at_mut(depth);
            children[0].and_count(&parents[depth - 1], bits)
        };
        if count < min_support {
            continue;
        }
        stack.push(token);
        stream_rec(
            positions,
            offsets,
            levels,
            stack,
            depth + 1,
            count,
            st.push(token),
            token_len + usize::from(!st.merges(token)),
            any_count + usize::from(token.is_any()),
            min_support,
            f,
        );
        stack.pop();
    }
}

/// Full analysis result for a column.
#[derive(Debug, Clone)]
pub struct ColumnAnalysis {
    /// Retained coarse groups, largest first.
    pub groups: Vec<CoarseGroup>,
    /// Total number of values analyzed (including dropped groups).
    pub total_values: usize,
}

impl ColumnAnalysis {
    /// The dominant group, if any.
    pub fn dominant(&self) -> Option<&CoarseGroup> {
        self.groups.first()
    }

    /// Single coarse structure covering every value (basic-FMDV assumption)?
    pub fn is_homogeneous(&self) -> bool {
        self.groups.len() == 1 && self.groups[0].count == self.total_values
    }
}

/// Merged-level generalization options for one merged run of a value.
fn for_each_merged_option<'a>(m: &MergedRun<'a>, mut f: impl FnMut(RunOption<'a>)) {
    let w = m.text.chars().count() as u16;
    f(RunOption::Lit(m.text));
    match m.class {
        MergedClass::Alnum => {
            f(RunOption::Tok(Token::Alnum(w)));
            f(RunOption::Tok(Token::AlnumPlus));
        }
        MergedClass::Sym => {
            f(RunOption::Tok(Token::Sym(w)));
            f(RunOption::Tok(Token::SymPlus));
        }
        MergedClass::Space => {
            f(RunOption::Tok(Token::SpacePlus));
        }
    }
    f(RunOption::Tok(Token::AnyPlus));
}

/// Record value `vi` as supporting `opt` at one position. Options are kept
/// in a small vector probed linearly — positions rarely exceed a dozen
/// distinct candidates, and this avoids hashing tokens (and boxing literal
/// text) once per *value* instead of once per *distinct option*.
fn note_option(options: &mut Vec<(Token, BitSet)>, opt: RunOption<'_>, vi: usize, sample: usize) {
    if let Some((_, bits)) = options.iter_mut().find(|(t, _)| opt.is_token(t)) {
        bits.set(vi);
        return;
    }
    let mut bits = BitSet::new(sample);
    bits.set(vi);
    options.push((opt.into_token(), bits));
}

/// Analyze a column: group by merged coarse key, flatten positions (strict
/// sub-runs where the whole group agrees on sub-structure, merged segments
/// otherwise) and record per-token supports.
pub fn analyze_column<S: AsRef<str>>(values: &[S], cfg: &PatternConfig) -> ColumnAnalysis {
    let total = values.len();
    // 1. Group value indices by merged key.
    let mut groups: HashMap<Pattern, Vec<usize>> = HashMap::new();
    for (i, v) in values.iter().enumerate() {
        groups.entry(merged_key(v.as_ref())).or_default().push(i);
    }
    let min_count = ((cfg.coverage_frac * total as f64).ceil() as usize).max(1);
    let mut out: Vec<CoarseGroup> = Vec::new();
    for (key, members) in groups {
        if members.len() < min_count {
            continue;
        }
        let sample: Vec<&str> = members
            .iter()
            .take(cfg.sample_values)
            .map(|&i| values[i].as_ref())
            .collect();
        let sample_size = sample.len();
        let parsed: Vec<Vec<MergedRun<'_>>> = sample.iter().map(|v| merged_runs(v)).collect();
        let arity = key.len();
        // Drill-down retention (Alg. 1): a candidate token must cover at
        // least the configured fraction of values — and never fewer than 2
        // once the sample is big enough to tell ("seeing a pattern once or
        // twice is not sufficient", §2.2). Tiny samples (single values,
        // short test columns) keep everything.
        let floor = if sample_size >= 8 { 2 } else { 1 };
        let min_support = ((cfg.coverage_frac * sample_size as f64).ceil() as usize).max(floor);
        let mut positions: Vec<PositionOptions> = Vec::new();
        for j in 0..arity {
            // Does the whole group share the strict sub-structure here?
            let first_classes: Vec<CharClass> = parsed[0][j].subs.iter().map(|r| r.class).collect();
            let consistent = parsed.iter().all(|mr| {
                mr[j].subs.len() == first_classes.len()
                    && mr[j]
                        .subs
                        .iter()
                        .zip(&first_classes)
                        .all(|(r, c)| r.class == *c)
            });
            if consistent {
                for s in 0..first_classes.len() {
                    let mut options: Vec<(Token, BitSet)> = Vec::new();
                    for (vi, mr) in parsed.iter().enumerate() {
                        for_each_run_option(&mr[j].subs[s], cfg, |opt| {
                            note_option(&mut options, opt, vi, sample_size);
                        });
                    }
                    positions.push(collect_options(options, min_support, sample_size));
                }
            } else {
                let mut options: Vec<(Token, BitSet)> = Vec::new();
                for (vi, mr) in parsed.iter().enumerate() {
                    for_each_merged_option(&mr[j], |opt| {
                        note_option(&mut options, opt, vi, sample_size);
                    });
                }
                positions.push(collect_options(options, min_support, sample_size));
            }
        }
        out.push(CoarseGroup {
            key,
            count: members.len(),
            sample_size,
            positions,
        });
    }
    out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
    ColumnAnalysis {
        groups: out,
        total_values: total,
    }
}

/// Filter by support threshold (class-level tokens always have full support
/// and survive), then order for trimming: partial-support options first
/// (lowest support earliest), then full-support by expendability rank, with
/// a deterministic token tie-break.
fn collect_options(
    map: Vec<(Token, BitSet)>,
    min_support: usize,
    sample_size: usize,
) -> PositionOptions {
    // Counts are computed once up front — the sort comparator would
    // otherwise popcount each side O(n log n) times.
    let mut options: Vec<(Token, BitSet, usize)> = map
        .into_iter()
        .filter_map(|(t, bits)| {
            let count = bits.count();
            (count >= min_support).then_some((t, bits, count))
        })
        .collect();
    options.sort_by(|(a, _, acount), (b, _, bcount)| {
        trim_rank(a, *acount == sample_size)
            .cmp(&trim_rank(b, *bcount == sample_size))
            .then_with(|| acount.cmp(bcount))
            .then_with(|| a.cmp(b))
    });
    PositionOptions {
        options: options.into_iter().map(|(t, bits, _)| (t, bits)).collect(),
    }
}

/// The hypothesis space `H(C) = ∩_{v∈C} P(v) \ ".*"` (§2.1): patterns
/// supported by every sampled value, available only when the column is
/// homogeneous (one coarse structure) — otherwise empty, which is the case
/// horizontal cuts (§4) handle.
pub fn hypothesis_space<S: AsRef<str>>(values: &[S], cfg: &PatternConfig) -> Vec<Pattern> {
    let analysis = analyze_column(values, cfg);
    if !analysis.is_homogeneous() {
        return Vec::new();
    }
    analysis.groups[0].full_support_patterns(cfg)
}

/// The space `P(v)` of patterns consistent with a single value (§2.1),
/// bounded by the enumeration caps.
pub fn patterns_of_value(value: &str, cfg: &PatternConfig) -> Vec<Pattern> {
    analyze_column(&[value], cfg)
        .groups
        .first()
        .map(|g| g.enumerate(cfg).into_iter().map(|sp| sp.pattern).collect())
        .unwrap_or_default()
}

/// Per-pattern matched fraction over the whole column — the quantity behind
/// `Imp_D(p) = 1 − matched_fraction` (Def. 1). Used by the offline indexer.
///
/// `tau` is the token-limit τ of §2.4, measured in *merged* tokens (the
/// analyzer's positions): wider values are excluded from pattern generation
/// (vertical cuts compensate at query time); they still count in the
/// denominator, i.e. they are treated as non-matching, which is
/// conservative.
pub fn column_pattern_profile<S: AsRef<str>>(
    values: &[S],
    cfg: &PatternConfig,
    tau: usize,
) -> Vec<(Pattern, f64)> {
    let mut acc: HashMap<Pattern, f64> = HashMap::new();
    with_enum_scratch(|scratch| {
        stream_column_profile(values, cfg, tau, scratch, |sp, frac| {
            *acc.entry(sp.to_pattern()).or_insert(0.0) += frac;
        });
    });
    let mut out: Vec<(Pattern, f64)> = acc.into_iter().collect();
    out.sort_by(|(a, _), (b, _)| a.cmp(b));
    out
}

/// Streaming form of [`column_pattern_profile`]: the offline indexer's hot
/// loop. For every enumerated pattern of every retained coarse group the
/// sink receives the [`StreamedPattern`] (fingerprint, support, canonical
/// length, borrowed tokens) plus the pattern's matched-fraction
/// *contribution* from that group — `support × (group count / sample) /
/// |column|`. Summing the contributions per fingerprint over the whole call
/// yields exactly the fractions [`column_pattern_profile`] reports, but no
/// `Pattern` is materialized, no token vector is cloned or hashed, and no
/// intermediate per-pattern map is built here: the caller folds the triples
/// straight into its own accumulators.
///
/// A pattern may be emitted by more than one coarse group of the same
/// column (e.g. `<alnum>+<any>+` from both an `[alnum sym]` and an
/// `[alnum space]` group), so per-column consumers must merge by
/// fingerprint before treating an emission as "the column follows p".
pub fn stream_column_profile<S: AsRef<str>>(
    values: &[S],
    cfg: &PatternConfig,
    tau: usize,
    scratch: &mut EnumScratch,
    mut sink: impl FnMut(&StreamedPattern<'_>, f64),
) {
    let narrow: Vec<&str> = values
        .iter()
        .map(|v| v.as_ref())
        .filter(|v| merged_token_count(v) <= tau)
        .collect();
    if narrow.is_empty() {
        return;
    }
    let total = values.len();
    let analysis = analyze_column(&narrow, cfg);
    for g in &analysis.groups {
        if g.sample_size == 0 {
            continue;
        }
        let scale = (g.count as f64 / g.sample_size as f64) / total as f64;
        g.for_each_pattern(0, g.positions.len(), 1, cfg, scratch, |sp| {
            sink(sp, sp.support as f64 * scale);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::matches;

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        assert_eq!(b.count(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert_eq!(b.count(), 3);
        assert!(b.get(64));
        assert!(!b.get(63));
        let mut c = BitSet::new(130);
        c.set(64);
        c.set(100);
        b.and_assign(&c);
        assert_eq!(b.count(), 1);
        assert!(b.get(64));
    }

    #[test]
    fn merged_key_fuses_alnum_runs() {
        // GUID-ish hex segments vary in strict structure but share a merged key.
        let k1 = merged_key("550e8400-e29b-41d4");
        let k2 = merged_key("abcdffff-1234-cdef");
        assert_eq!(k1, k2);
        assert_eq!(k1.to_string(), "<alnum>+<sym>+<alnum>+<sym>+<alnum>+");
    }

    #[test]
    fn merged_runs_reconstruct_text() {
        for v in ["550e8400-e29b", "Mar 01 2019", "..ab12..", ""] {
            let ms = merged_runs(v);
            let joined: String = ms.iter().map(|m| m.text).collect();
            assert_eq!(joined, v);
        }
    }

    #[test]
    fn guid_column_is_homogeneous_and_yields_alnum_patterns() {
        let values = [
            "550e8400-e29b-41d4-a716-446655440000",
            "67e55044-10b1-426f-9247-bb680e5fe0c8",
            "deadbeef-cafe-babe-f00d-000000000001",
        ];
        let cfg = PatternConfig::default();
        let analysis = analyze_column(&values, &cfg);
        assert!(analysis.is_homogeneous());
        let h = hypothesis_space(&values, &cfg);
        assert!(!h.is_empty());
        // The canonical GUID pattern must be among the hypotheses.
        let want = crate::parser::parse("<alnum>{8}-<alnum>{4}-<alnum>{4}-<alnum>{4}-<alnum>{12}")
            .unwrap();
        assert!(h.contains(&want), "H(C) missing {want}");
        for p in &h {
            for v in &values {
                assert!(matches(p, v), "{p} vs {v}");
            }
        }
    }

    #[test]
    fn impure_column_reports_partial_support() {
        // Fig. 6's D: time-stamps where some values have 1-digit hours and
        // some 2-digit hours. The narrow pattern h2 must come out with
        // partial support (impurity > 0), not disappear.
        let values = [
            "9:07:32 AM",
            "8:01:15 AM",
            "7:00:00 PM",
            "10:02:20 AM",
            "11:45:12 PM",
            "12:01:32 PM",
        ];
        let cfg = PatternConfig::default();
        let analysis = analyze_column(&values, &cfg);
        assert_eq!(analysis.groups.len(), 1, "one coarse structure");
        let g = &analysis.groups[0];
        let enumerated = g.enumerate(&cfg);
        // h2-like pattern with a single-digit hour.
        let h2 = crate::parser::parse("<digit>{1}:<digit>{2}:<digit>{2} <letter>{2}").unwrap();
        let found = enumerated
            .iter()
            .find(|sp| sp.pattern == h2)
            .unwrap_or_else(|| panic!("h2 not enumerated"));
        assert_eq!(found.support, 3, "three values have 1-digit hours");
        // The good pattern has full support.
        let h5 = crate::parser::parse("<digit>+:<digit>{2}:<digit>{2} <letter>{2}").unwrap();
        let found5 = enumerated.iter().find(|sp| sp.pattern == h5).unwrap();
        assert_eq!(found5.support, 6);
    }

    #[test]
    fn profile_reports_matched_fractions() {
        let values = [
            "9:07:32 AM",
            "8:01:15 AM",
            "7:00:00 PM",
            "10:02:20 AM",
            "11:45:12 PM",
            "12:01:32 PM",
        ];
        let cfg = PatternConfig::default();
        let profile = column_pattern_profile(&values, &cfg, 13);
        let h2 = crate::parser::parse("<digit>{1}:<digit>{2}:<digit>{2} <letter>{2}").unwrap();
        let h5 = crate::parser::parse("<digit>+:<digit>{2}:<digit>{2} <letter>{2}").unwrap();
        let frac = |p: &Pattern| {
            profile
                .iter()
                .find(|(q, _)| q == p)
                .map(|(_, f)| *f)
                .unwrap_or(0.0)
        };
        assert!((frac(&h2) - 0.5).abs() < 1e-9, "h2 frac = {}", frac(&h2));
        assert!((frac(&h5) - 1.0).abs() < 1e-9, "h5 frac = {}", frac(&h5));
    }

    #[test]
    fn tau_excludes_wide_values() {
        // One narrow value, one 15-token value; τ = 8 keeps only the narrow
        // one and scales by the full column size.
        let values = ["abc", "1/2/3 4:5:6 7-8"];
        let cfg = PatternConfig::default();
        let profile = column_pattern_profile(&values, &cfg, 8);
        assert!(!profile.is_empty());
        for (p, f) in &profile {
            assert!(*f <= 0.5 + 1e-9, "{p} has frac {f}");
        }
    }

    #[test]
    fn mixed_alnum_and_symbol_structures_are_different_groups() {
        let values = ["12345", "hello", "2019-01-01"];
        let cfg = PatternConfig::default();
        let analysis = analyze_column(&values, &cfg);
        assert_eq!(analysis.groups.len(), 2); // [alnum] ×2 and [alnum sym alnum sym alnum]
        assert!(hypothesis_space(&values, &cfg).is_empty());
    }

    #[test]
    fn pure_alnum_disagreement_still_shares_alnum_level() {
        // "12345" and "hello" have the same merged key; H(C) contains the
        // alnum-level generalizations only.
        let values = ["12345", "hello"];
        let cfg = PatternConfig::default();
        let h = hypothesis_space(&values, &cfg);
        let alnum5 = Pattern::new(vec![Token::Alnum(5)]);
        let alnum_plus = Pattern::new(vec![Token::AlnumPlus]);
        assert!(h.contains(&alnum5));
        assert!(h.contains(&alnum_plus));
        assert!(h.iter().all(|p| !p.is_trivial()));
    }
}
