//! Coarse lexer: split a value into maximal runs of a single character class.
//!
//! This is the first step of the paper's pattern generation (§3): "we first
//! use a lexer to tokenize each v ∈ C into coarse-grained token-classes
//! (`<symbol>`, `<num>`, `<letter>`), by scanning each v from left to right
//! and growing each token until a character of a different class is
//! encountered."

use crate::token::CharClass;

/// One maximal run of same-class characters inside a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run<'a> {
    /// The character class of every char in the run.
    pub class: CharClass,
    /// The run's text (a slice of the original value).
    pub text: &'a str,
}

impl<'a> Run<'a> {
    /// Number of characters in the run.
    pub fn len(&self) -> usize {
        self.text.chars().count()
    }

    /// True when the run is empty (never produced by [`tokenize`]).
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

/// Split `value` into maximal same-class runs.
///
/// The concatenation of all run texts is exactly `value`; empty input yields
/// an empty vector.
///
/// ```
/// use av_pattern::{tokenize, CharClass};
/// let runs = tokenize("Mar 01 2019");
/// assert_eq!(runs.len(), 5);
/// assert_eq!(runs[0].text, "Mar");
/// assert_eq!(runs[0].class, CharClass::Letter);
/// assert_eq!(runs[1].class, CharClass::Space);
/// assert_eq!(runs[2].text, "01");
/// ```
pub fn tokenize(value: &str) -> Vec<Run<'_>> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    let mut cur: Option<CharClass> = None;
    for (i, c) in value.char_indices() {
        let class = CharClass::of(c);
        match cur {
            Some(prev) if prev == class => {}
            Some(prev) => {
                runs.push(Run {
                    class: prev,
                    text: &value[start..i],
                });
                start = i;
                cur = Some(class);
            }
            None => {
                cur = Some(class);
            }
        }
    }
    if let Some(class) = cur {
        runs.push(Run {
            class,
            text: &value[start..],
        });
    }
    runs
}

/// Number of coarse tokens in a value — the paper's `t(v)` (§2.4), used for
/// the token-limit τ when deciding whether a column is indexed.
pub fn token_count(value: &str) -> usize {
    let mut count = 0usize;
    let mut cur: Option<CharClass> = None;
    for c in value.chars() {
        let class = CharClass::of(c);
        if cur != Some(class) {
            count += 1;
            cur = Some(class);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_value_has_no_runs() {
        assert!(tokenize("").is_empty());
        assert_eq!(token_count(""), 0);
    }

    #[test]
    fn single_class_value_is_one_run() {
        let runs = tokenize("12345");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].class, CharClass::Digit);
        assert_eq!(runs[0].text, "12345");
    }

    #[test]
    fn date_time_example_from_paper() {
        // Fig. 5: "9/07/2019 12:01:32 PM"
        let runs = tokenize("9/07/2019 12:01:32 PM");
        let texts: Vec<&str> = runs.iter().map(|r| r.text).collect();
        assert_eq!(
            texts,
            vec!["9", "/", "07", "/", "2019", " ", "12", ":", "01", ":", "32", " ", "PM"]
        );
        assert_eq!(token_count("9/07/2019 12:01:32 PM"), 13);
    }

    #[test]
    fn symbols_group_into_runs() {
        let runs = tokenize("a--b");
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[1].text, "--");
        assert_eq!(runs[1].class, CharClass::Symbol);
    }

    #[test]
    fn concatenation_reconstructs_value() {
        for v in [
            "Mar 01 2019",
            "0.1|02/18/2015 00:00:00|OnBooking",
            "",
            "  a1!",
        ] {
            let runs = tokenize(v);
            let joined: String = runs.iter().map(|r| r.text).collect();
            assert_eq!(joined, v);
        }
    }

    #[test]
    fn token_count_matches_tokenize_len() {
        for v in ["9:07", "en-US", "...", "a1b2c3", " x "] {
            assert_eq!(token_count(v), tokenize(v).len(), "value {v:?}");
        }
    }

    #[test]
    fn non_ascii_is_symbol_class() {
        let runs = tokenize("naïve");
        // 'ï' is a symbol under the ASCII-centric classifier.
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[1].class, CharClass::Symbol);
    }

    #[test]
    fn crlf_bearing_values_tokenize_as_whitespace() {
        // A CRLF remnant from a Windows-exported feed: the "\r\n" must be
        // one Space run, not a symbol run that would split the domain.
        let runs = tokenize("Mar 01\r\n2019");
        let classes: Vec<CharClass> = runs.iter().map(|r| r.class).collect();
        assert_eq!(
            classes,
            vec![
                CharClass::Letter,
                CharClass::Space,
                CharClass::Digit,
                CharClass::Space,
                CharClass::Digit,
            ]
        );
        assert_eq!(runs[3].text, "\r\n");
        // Mixed whitespace coalesces into a single run.
        assert_eq!(tokenize("a \t\r\n\x0B\x0Cb").len(), 3);
        // And the token count agrees with the run structure.
        assert_eq!(token_count("Mar 01\r\n2019"), 5);
    }
}
