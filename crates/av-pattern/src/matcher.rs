//! Full-string pattern matching: does a pattern accept a value?
//!
//! This implements the "`h ∈ P(v)`" test used at validation time (Def. 1 and
//! the validator in §4). Matching is character-level with memoized
//! backtracking: only variadic tokens (`<digit>+`, `<num>`, `<any>+`, ...)
//! branch, and the memo bounds work to `O(|tokens| · |value|)` states.

use crate::pattern::Pattern;
use crate::token::Token;

/// Returns true when `pattern` matches the *entire* `value`.
///
/// ```
/// use av_pattern::{Pattern, Token, matches};
/// let p = Pattern::new(vec![Token::Letter(3), Token::lit(" "), Token::Digit(2)]);
/// assert!(matches(&p, "Mar 01"));
/// assert!(!matches(&p, "Mar 1"));
/// assert!(!matches(&p, "Mar 01 "));
/// ```
pub fn matches(pattern: &Pattern, value: &str) -> bool {
    let chars: Vec<char> = value.chars().collect();
    let tokens = pattern.tokens();
    if tokens.is_empty() {
        return chars.is_empty();
    }
    // Decode each literal once per match — backtracking revisits Lit arms
    // many times, and re-collecting the chars on every visit dominated the
    // profile of variadic-heavy patterns.
    let lits: Vec<Vec<char>> = tokens
        .iter()
        .map(|t| match t {
            Token::Lit(s) => s.chars().collect(),
            _ => Vec::new(),
        })
        .collect();
    // memo[ti * (n+1) + pos] = true if (ti, pos) is known to fail.
    let n = chars.len();
    let mut failed = vec![false; tokens.len() * (n + 1)];
    match_at(tokens, &lits, &chars, 0, 0, &mut failed)
}

/// Reference implementation of the furthest-reached position: the length
/// in bytes of the longest prefix of `value` that is also a prefix of some
/// string `pattern` accepts. Returns `None` exactly when the pattern
/// matches the whole value.
///
/// This is the oracle for `CompiledPattern::explain` — same character-level
/// exploration as [`matches()`], instrumented to record partial progress
/// inside every token (a literal that agrees on its first two characters
/// reached two characters further, even though the token failed).
///
/// ```
/// use av_pattern::{furthest_mismatch, parse};
/// let p = parse("<digit>{4}-<digit>{2}").unwrap();
/// assert_eq!(furthest_mismatch(&p, "2019-0x"), Some(6));
/// assert_eq!(furthest_mismatch(&p, "2019-07"), None);
/// ```
pub fn furthest_mismatch(pattern: &Pattern, value: &str) -> Option<usize> {
    let chars: Vec<char> = value.chars().collect();
    let tokens = pattern.tokens();
    let mut furthest = 0usize; // in characters
    let ok = if tokens.is_empty() {
        chars.is_empty()
    } else {
        let lits: Vec<Vec<char>> = tokens
            .iter()
            .map(|t| match t {
                Token::Lit(s) => s.chars().collect(),
                _ => Vec::new(),
            })
            .collect();
        let n = chars.len();
        let mut failed = vec![false; tokens.len() * (n + 1)];
        track_at(tokens, &lits, &chars, 0, 0, &mut failed, &mut furthest)
    };
    if ok {
        None
    } else {
        // Character count back to a byte offset of the original value.
        Some(
            value
                .char_indices()
                .nth(furthest)
                .map_or(value.len(), |(b, _)| b),
        )
    }
}

/// [`match_at`] threading a running maximum of the position reached —
/// including partial progress inside literal, fixed-width, and `<num>`
/// tokens, which the plain matcher discards on token failure.
fn track_at(
    tokens: &[Token],
    lits: &[Vec<char>],
    chars: &[char],
    ti: usize,
    pos: usize,
    failed: &mut [bool],
    furthest: &mut usize,
) -> bool {
    *furthest = (*furthest).max(pos);
    if ti == tokens.len() {
        return pos == chars.len();
    }
    let n = chars.len();
    let key = ti * (n + 1) + pos;
    if failed[key] {
        return false;
    }
    let ok = match &tokens[ti] {
        Token::Lit(_) => {
            let lit = &lits[ti];
            let common = lit
                .iter()
                .zip(chars[pos..].iter())
                .take_while(|(a, b)| a == b)
                .count();
            *furthest = (*furthest).max(pos + common);
            if common == lit.len() {
                track_at(tokens, lits, chars, ti + 1, pos + common, failed, furthest)
            } else {
                false
            }
        }
        t @ (Token::Digit(_)
        | Token::Upper(_)
        | Token::Lower(_)
        | Token::Letter(_)
        | Token::Alnum(_)
        | Token::Sym(_)) => {
            let w = t.fixed_width().expect("fixed token has width");
            let run = chars[pos..]
                .iter()
                .take(w)
                .take_while(|&&c| t.class_contains(c))
                .count();
            *furthest = (*furthest).max(pos + run);
            if run == w {
                track_at(tokens, lits, chars, ti + 1, pos + w, failed, furthest)
            } else {
                false
            }
        }
        Token::Num => track_num_reach(tokens, lits, chars, ti, pos, failed, furthest),
        t @ (Token::DigitPlus
        | Token::UpperPlus
        | Token::LowerPlus
        | Token::LetterPlus
        | Token::AlnumPlus
        | Token::SymPlus
        | Token::SpacePlus
        | Token::AnyPlus) => {
            let mut max_end = pos;
            while max_end < n && t.class_contains(chars[max_end]) {
                max_end += 1;
            }
            *furthest = (*furthest).max(max_end);
            let mut found = false;
            let mut end = max_end;
            while end > pos {
                if track_at(tokens, lits, chars, ti + 1, end, failed, furthest) {
                    found = true;
                    break;
                }
                end -= 1;
            }
            found
        }
    };
    if !ok {
        failed[key] = true;
    }
    ok
}

/// [`match_num`] with reach tracking: the integer scan, a trailing dot, and
/// any fraction digits are all prefixes of some number, so they extend the
/// reach even when no legal end position comes of them.
fn track_num_reach(
    tokens: &[Token],
    lits: &[Vec<char>],
    chars: &[char],
    ti: usize,
    pos: usize,
    failed: &mut [bool],
    furthest: &mut usize,
) -> bool {
    let n = chars.len();
    let mut int_end = pos;
    while int_end < n && chars[int_end].is_ascii_digit() {
        int_end += 1;
    }
    if int_end == pos {
        return false;
    }
    *furthest = (*furthest).max(int_end);
    if int_end < n && chars[int_end] == '.' {
        let mut fe = int_end + 1;
        while fe < n && chars[fe].is_ascii_digit() {
            fe += 1;
        }
        *furthest = (*furthest).max(fe);
    }
    let mut candidates: Vec<usize> = Vec::new();
    for ie in (pos + 1..=int_end).rev() {
        if ie < n && chars[ie] == '.' {
            let mut fe = ie + 1;
            while fe < n && chars[fe].is_ascii_digit() {
                fe += 1;
            }
            let mut f = fe;
            while f > ie + 1 {
                candidates.push(f);
                f -= 1;
            }
        }
        candidates.push(ie);
    }
    candidates
        .into_iter()
        .any(|end| track_at(tokens, lits, chars, ti + 1, end, failed, furthest))
}

fn match_at(
    tokens: &[Token],
    lits: &[Vec<char>],
    chars: &[char],
    ti: usize,
    pos: usize,
    failed: &mut [bool],
) -> bool {
    if ti == tokens.len() {
        return pos == chars.len();
    }
    let n = chars.len();
    let key = ti * (n + 1) + pos;
    if failed[key] {
        return false;
    }
    let ok = match &tokens[ti] {
        Token::Lit(_) => {
            let lit = &lits[ti];
            if pos + lit.len() <= n && chars[pos..pos + lit.len()] == lit[..] {
                match_at(tokens, lits, chars, ti + 1, pos + lit.len(), failed)
            } else {
                false
            }
        }
        t @ (Token::Digit(_)
        | Token::Upper(_)
        | Token::Lower(_)
        | Token::Letter(_)
        | Token::Alnum(_)
        | Token::Sym(_)) => {
            let w = t.fixed_width().expect("fixed token has width");
            if pos + w <= n && chars[pos..pos + w].iter().all(|&c| t.class_contains(c)) {
                match_at(tokens, lits, chars, ti + 1, pos + w, failed)
            } else {
                false
            }
        }
        Token::Num => match_num(tokens, lits, chars, ti, pos, failed),
        t @ (Token::DigitPlus
        | Token::UpperPlus
        | Token::LowerPlus
        | Token::LetterPlus
        | Token::AlnumPlus
        | Token::SymPlus
        | Token::SpacePlus
        | Token::AnyPlus) => {
            // Greedy with backtracking: find the maximal run in the token's
            // class, then try splits from longest to shortest.
            let mut max_end = pos;
            while max_end < n && t.class_contains(chars[max_end]) {
                max_end += 1;
            }
            let mut found = false;
            let mut end = max_end;
            while end > pos {
                if match_at(tokens, lits, chars, ti + 1, end, failed) {
                    found = true;
                    break;
                }
                end -= 1;
            }
            found
        }
    };
    if !ok {
        failed[key] = true;
    }
    ok
}

/// `<num>` = `\d+(\.\d+)?`. Try every legal end position, longest first.
fn match_num(
    tokens: &[Token],
    lits: &[Vec<char>],
    chars: &[char],
    ti: usize,
    pos: usize,
    failed: &mut [bool],
) -> bool {
    let n = chars.len();
    // integer part
    let mut int_end = pos;
    while int_end < n && chars[int_end].is_ascii_digit() {
        int_end += 1;
    }
    if int_end == pos {
        return false;
    }
    // optional fractional part (only directly after the maximal integer run
    // or any shorter one; we must consider all split points).
    // Collect candidate end positions.
    let mut candidates: Vec<usize> = Vec::new();
    for ie in (pos + 1..=int_end).rev() {
        // with fraction: chars[ie] == '.' then 1+ digits
        if ie < n && chars[ie] == '.' {
            let mut fe = ie + 1;
            while fe < n && chars[fe].is_ascii_digit() {
                fe += 1;
            }
            // all fraction lengths are legal ends
            let mut f = fe;
            while f > ie + 1 {
                candidates.push(f);
                f -= 1;
            }
        }
        candidates.push(ie);
    }
    candidates
        .into_iter()
        .any(|end| match_at(tokens, lits, chars, ti + 1, end, failed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;

    fn pat(tokens: Vec<Token>) -> Pattern {
        Pattern::new(tokens)
    }

    #[test]
    fn empty_pattern_matches_only_empty_string() {
        assert!(matches(&Pattern::empty(), ""));
        assert!(!matches(&Pattern::empty(), "x"));
    }

    #[test]
    fn paper_c1_validation_pattern() {
        // "<letter>{3} <digit>{2} <digit>{4}" validates both observed and
        // future values of C1 (Fig. 2a).
        let p = pat(vec![
            Token::Letter(3),
            Token::lit(" "),
            Token::Digit(2),
            Token::lit(" "),
            Token::Digit(4),
        ]);
        for v in ["Mar 01 2019", "Mar 30 2019", "Apr 01 2019", "Oct 11 2020"] {
            assert!(matches(&p, v), "{v}");
        }
        assert!(!matches(&p, "March 01 2019"));
        assert!(!matches(&p, "Mar 1 2019"));
    }

    #[test]
    fn paper_c2_validation_pattern() {
        // "<digit>+/<digit>{2}/<digit>{4} <digit>+:<digit>{2}:<digit>{2} <letter>{2}"
        let p = pat(vec![
            Token::DigitPlus,
            Token::lit("/"),
            Token::Digit(2),
            Token::lit("/"),
            Token::Digit(4),
            Token::lit(" "),
            Token::DigitPlus,
            Token::lit(":"),
            Token::Digit(2),
            Token::lit(":"),
            Token::Digit(2),
            Token::lit(" "),
            Token::Letter(2),
        ]);
        assert!(matches(&p, "9/07/2019 12:01:32 PM"));
        assert!(matches(&p, "12/01/2019 9:40:51 AM"));
        assert!(!matches(&p, "9/07/2019 12:01:32"));
    }

    #[test]
    fn num_matches_integers_and_floats() {
        let p = pat(vec![Token::Num]);
        assert!(matches(&p, "9"));
        assert!(matches(&p, "0.1"));
        assert!(matches(&p, "12345.6789"));
        assert!(!matches(&p, ".5"));
        assert!(!matches(&p, "5."));
        assert!(!matches(&p, "1.2.3"));
        assert!(!matches(&p, ""));
    }

    #[test]
    fn num_with_following_literal_backtracks() {
        // <num>:<digit>+ on "9:07" (paper §2.1 example member of P(v)).
        let p = pat(vec![Token::Num, Token::lit(":"), Token::DigitPlus]);
        assert!(matches(&p, "9:07"));
        // <num>.<digit>{2} on "3.14" requires <num> to give back the dot.
        let p2 = pat(vec![Token::Num, Token::lit("."), Token::Digit(2)]);
        assert!(matches(&p2, "3.14"));
        // and on "1.5.99" <num> must match "1.5".
        let p3 = pat(vec![Token::Num, Token::lit("."), Token::Digit(2)]);
        assert!(matches(&p3, "1.5.99"));
    }

    #[test]
    fn adjacent_variadic_tokens_split() {
        // <alnum>+<alnum>+ requires at least two alphanumeric chars.
        let p = pat(vec![Token::AlnumPlus, Token::AlnumPlus]);
        assert!(matches(&p, "a1"));
        assert!(matches(&p, "abc123"));
        assert!(!matches(&p, "a"));
    }

    #[test]
    fn any_plus_absorbs_everything_nonempty() {
        let p = pat(vec![Token::AnyPlus]);
        assert!(matches(&p, "anything at all !@#"));
        assert!(!matches(&p, ""));
    }

    #[test]
    fn case_tokens() {
        assert!(matches(&pat(vec![Token::UpperPlus]), "ABC"));
        assert!(!matches(&pat(vec![Token::UpperPlus]), "AbC"));
        assert!(matches(
            &pat(vec![Token::Upper(1), Token::LowerPlus]),
            "Mar"
        ));
    }

    #[test]
    fn sym_and_space() {
        assert!(matches(&pat(vec![Token::Sym(2)]), "--"));
        assert!(!matches(&pat(vec![Token::Sym(2)]), "-a"));
        assert!(matches(
            &pat(vec![Token::lit("a"), Token::SpacePlus, Token::lit("b")]),
            "a  \tb"
        ));
    }

    #[test]
    fn pathological_backtracking_terminates() {
        // Many adjacent <any>+ tokens against a long string must not blow up.
        let p = pat(vec![Token::AnyPlus; 12]);
        let long = "x".repeat(200);
        assert!(matches(&p, &long));
        let p2 = Pattern::new(
            std::iter::repeat_n(Token::AnyPlus, 12)
                .chain([Token::lit("!")])
                .collect::<Vec<_>>(),
        );
        assert!(!matches(&p2, &long));
    }
}
