//! Pattern tokens: the vocabulary of the generalization hierarchy (paper §2.1, Fig. 4).
//!
//! A [`Token`] is one node of the string generalization hierarchy. Leaf
//! tokens are constants; intermediate tokens generalize runs of characters
//! into classes (`<digit>{2}`, `<letter>+`, `<num>`, ...). A pattern is a
//! sequence of tokens (see [`crate::Pattern`]).

use std::fmt;

/// Character class of a single character, used by the tokenizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CharClass {
    /// ASCII digit `0-9`.
    Digit,
    /// ASCII letter `a-z` / `A-Z`.
    Letter,
    /// ASCII whitespace (space, tab, CR, LF, vertical tab, form feed).
    Space,
    /// Anything else (punctuation, unicode, ...).
    Symbol,
}

impl CharClass {
    /// Classify one character.
    ///
    /// All six ASCII whitespace characters are [`CharClass::Space`] — values
    /// arriving from real feeds carry CRLF remnants and embedded newlines,
    /// and classifying `\r`/`\n` as symbols would split `"a\r\n"` into a
    /// spurious symbol run and make CRLF-bearing columns structurally
    /// different from their clean counterparts.
    #[inline]
    pub fn of(c: char) -> CharClass {
        if c.is_ascii_digit() {
            CharClass::Digit
        } else if c.is_ascii_alphabetic() {
            CharClass::Letter
        } else if matches!(c, ' ' | '\t' | '\r' | '\n' | '\x0B' | '\x0C') {
            CharClass::Space
        } else {
            CharClass::Symbol
        }
    }
}

/// One token of a data-domain pattern.
///
/// The variants mirror the paper's generalization hierarchy (Fig. 4) plus the
/// seven per-position generalizations enumerated in §1 for the digit "9":
/// constant, `<digit>{1}`, `<digit>+`, `<num>`, `<alnum>`, `<alnum>+`, `<any>+`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Token {
    /// A literal constant string (leaf of the hierarchy).
    Lit(Box<str>),
    /// Exactly `n` digits: `<digit>{n}`.
    Digit(u16),
    /// One or more digits: `<digit>+`.
    DigitPlus,
    /// A number, including floating point: `<num>` = `\d+(\.\d+)?`.
    Num,
    /// Exactly `n` uppercase letters: `<upper>{n}`.
    Upper(u16),
    /// One or more uppercase letters: `<upper>+`.
    UpperPlus,
    /// Exactly `n` lowercase letters: `<lower>{n}`.
    Lower(u16),
    /// One or more lowercase letters: `<lower>+`.
    LowerPlus,
    /// Exactly `n` letters of any case: `<letter>{n}`.
    Letter(u16),
    /// One or more letters: `<letter>+`.
    LetterPlus,
    /// Exactly `n` alphanumeric characters: `<alnum>{n}`.
    Alnum(u16),
    /// One or more alphanumeric characters: `<alnum>+`.
    AlnumPlus,
    /// Exactly `n` symbol characters: `<sym>{n}`.
    Sym(u16),
    /// One or more symbol characters: `<sym>+`.
    SymPlus,
    /// One or more whitespace characters: `<space>+`.
    SpacePlus,
    /// One or more characters of any kind: `<any>+` (root of the hierarchy).
    AnyPlus,
}

impl Token {
    /// Literal token from anything string-like.
    pub fn lit(s: impl Into<Box<str>>) -> Token {
        Token::Lit(s.into())
    }

    /// Is this token variadic (can consume a variable number of characters)?
    #[inline]
    pub fn is_variadic(&self) -> bool {
        matches!(
            self,
            Token::DigitPlus
                | Token::Num
                | Token::UpperPlus
                | Token::LowerPlus
                | Token::LetterPlus
                | Token::AlnumPlus
                | Token::SymPlus
                | Token::SpacePlus
                | Token::AnyPlus
        )
    }

    /// Is this token the root `<any>+`?
    #[inline]
    pub fn is_any(&self) -> bool {
        matches!(self, Token::AnyPlus)
    }

    /// Does a single character belong to this token's character set?
    ///
    /// For `Lit` this is position-dependent and handled by the matcher; here
    /// we only answer for class tokens (`Lit` returns `false`).
    #[inline]
    pub fn class_contains(&self, c: char) -> bool {
        match self {
            Token::Lit(_) => false,
            Token::Digit(_) | Token::DigitPlus => c.is_ascii_digit(),
            // `Num` additionally accepts '.' between digit groups; the
            // matcher enforces the grammar, this is the character alphabet.
            Token::Num => c.is_ascii_digit() || c == '.',
            Token::Upper(_) | Token::UpperPlus => c.is_ascii_uppercase(),
            Token::Lower(_) | Token::LowerPlus => c.is_ascii_lowercase(),
            Token::Letter(_) | Token::LetterPlus => c.is_ascii_alphabetic(),
            Token::Alnum(_) | Token::AlnumPlus => c.is_ascii_alphanumeric(),
            Token::Sym(_) | Token::SymPlus => CharClass::of(c) == CharClass::Symbol,
            Token::SpacePlus => CharClass::of(c) == CharClass::Space,
            Token::AnyPlus => true,
        }
    }

    /// Fixed width of this token in characters, or `None` if variadic.
    ///
    /// `Lit` widths are measured in characters (values are ASCII-dominated
    /// machine-generated strings; non-ASCII is counted per `char`).
    #[inline]
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            Token::Lit(s) => Some(s.chars().count()),
            Token::Digit(n)
            | Token::Upper(n)
            | Token::Lower(n)
            | Token::Letter(n)
            | Token::Alnum(n)
            | Token::Sym(n) => Some(*n as usize),
            _ => None,
        }
    }

    /// A coarse specificity rank: smaller is more specific (deeper in the
    /// hierarchy). Used only for deterministic tie-breaking, not semantics.
    pub fn specificity(&self) -> u8 {
        match self {
            Token::Lit(_) => 0,
            Token::Digit(_) | Token::Upper(_) | Token::Lower(_) => 1,
            Token::DigitPlus | Token::UpperPlus | Token::LowerPlus => 2,
            Token::Letter(_) => 2,
            Token::Num | Token::LetterPlus => 3,
            Token::Alnum(_) => 4,
            Token::AlnumPlus | Token::Sym(_) | Token::SpacePlus => 5,
            Token::SymPlus => 6,
            Token::AnyPlus => 7,
        }
    }
}

/// Escape a literal for display inside a pattern string.
fn escape_lit(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for c in s.chars() {
        match c {
            '<' => f.write_str("\\<")?,
            '>' => f.write_str("\\>")?,
            '\\' => f.write_str("\\\\")?,
            _ => fmt::Write::write_char(f, c)?,
        }
    }
    Ok(())
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Lit(s) => escape_lit(s, f),
            Token::Digit(n) => write!(f, "<digit>{{{n}}}"),
            Token::DigitPlus => f.write_str("<digit>+"),
            Token::Num => f.write_str("<num>"),
            Token::Upper(n) => write!(f, "<upper>{{{n}}}"),
            Token::UpperPlus => f.write_str("<upper>+"),
            Token::Lower(n) => write!(f, "<lower>{{{n}}}"),
            Token::LowerPlus => f.write_str("<lower>+"),
            Token::Letter(n) => write!(f, "<letter>{{{n}}}"),
            Token::LetterPlus => f.write_str("<letter>+"),
            Token::Alnum(n) => write!(f, "<alnum>{{{n}}}"),
            Token::AlnumPlus => f.write_str("<alnum>+"),
            Token::Sym(n) => write!(f, "<sym>{{{n}}}"),
            Token::SymPlus => f.write_str("<sym>+"),
            Token::SpacePlus => f.write_str("<space>+"),
            Token::AnyPlus => f.write_str("<any>+"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_class_of_covers_all_classes() {
        assert_eq!(CharClass::of('7'), CharClass::Digit);
        assert_eq!(CharClass::of('a'), CharClass::Letter);
        assert_eq!(CharClass::of('Z'), CharClass::Letter);
        assert_eq!(CharClass::of(' '), CharClass::Space);
        assert_eq!(CharClass::of('\t'), CharClass::Space);
        assert_eq!(CharClass::of('/'), CharClass::Symbol);
        assert_eq!(CharClass::of('é'), CharClass::Symbol);
    }

    #[test]
    fn all_ascii_whitespace_is_space_class() {
        for c in ['\r', '\n', '\x0B', '\x0C'] {
            assert_eq!(CharClass::of(c), CharClass::Space, "{c:?}");
            assert!(Token::SpacePlus.class_contains(c), "{c:?}");
        }
        // Unicode whitespace stays in the symbol bucket (ASCII classifier).
        assert_eq!(CharClass::of('\u{00A0}'), CharClass::Symbol);
    }

    #[test]
    fn variadic_flags() {
        assert!(Token::DigitPlus.is_variadic());
        assert!(Token::Num.is_variadic());
        assert!(Token::AnyPlus.is_variadic());
        assert!(!Token::Digit(3).is_variadic());
        assert!(!Token::lit("abc").is_variadic());
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(Token::Digit(4).fixed_width(), Some(4));
        assert_eq!(Token::lit("ab<").fixed_width(), Some(3));
        assert_eq!(Token::LetterPlus.fixed_width(), None);
    }

    #[test]
    fn class_contains_respects_case() {
        assert!(Token::Upper(1).class_contains('A'));
        assert!(!Token::Upper(1).class_contains('a'));
        assert!(Token::Lower(1).class_contains('a'));
        assert!(Token::Letter(1).class_contains('a'));
        assert!(Token::Letter(1).class_contains('A'));
        assert!(!Token::Letter(1).class_contains('1'));
        assert!(Token::Alnum(1).class_contains('1'));
        assert!(Token::AnyPlus.class_contains('/'));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Token::Digit(2).to_string(), "<digit>{2}");
        assert_eq!(Token::DigitPlus.to_string(), "<digit>+");
        assert_eq!(Token::Num.to_string(), "<num>");
        assert_eq!(Token::lit("a<b").to_string(), "a\\<b");
        assert_eq!(Token::AnyPlus.to_string(), "<any>+");
    }

    #[test]
    fn specificity_is_monotone_along_digit_chain() {
        let chain = [
            Token::lit("9"),
            Token::Digit(1),
            Token::DigitPlus,
            Token::Num,
            Token::Alnum(1),
            Token::AlnumPlus,
            Token::AnyPlus,
        ];
        for w in chain.windows(2) {
            assert!(w[0].specificity() <= w[1].specificity(), "{w:?}");
        }
    }
}
