//! Generation config, per-run generalization chains, and coarse patterns.
//!
//! The per-position option chains follow the paper's §1 enumeration of the
//! seven ways to generalize the digit "9": constant, `<digit>{1}`,
//! `<digit>+`, `<num>`, `<alnum>{1}`, `<alnum>+`, `<any>+` (letter runs get
//! case-specific refinements, symbol/space runs shorter chains).
//! Column-level analysis lives in [`crate::analyze`].

use crate::pattern::Pattern;
use crate::token::{CharClass, Token};
use crate::tokenize::{tokenize, Run};

/// Tuning knobs for pattern generation.
#[derive(Debug, Clone)]
pub struct PatternConfig {
    /// Token-limit τ (§2.4): values with more than this many coarse tokens
    /// are skipped during offline indexing (vertical cuts compensate, §3).
    pub max_tokens: usize,
    /// Minimum fraction of a column's values a coarse group or a drilled
    /// token must cover to be retained (Algorithm 1's "sufficient coverage").
    pub coverage_frac: f64,
    /// Hard cap on the number of fine-grained patterns enumerated per coarse
    /// group; when the cross-product exceeds it, options are trimmed in a
    /// class-aware order (partial-support and `<any>+` options first).
    pub max_patterns: usize,
    /// Offer `<upper>`/`<lower>` refinements for uniformly-cased letter runs.
    pub case_tokens: bool,
    /// Maximum number of values per coarse group tracked in support bitsets.
    pub sample_values: usize,
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig {
            max_tokens: 13,
            coverage_frac: 0.05,
            max_patterns: 4096,
            case_tokens: true,
            sample_values: 256,
        }
    }
}

impl PatternConfig {
    /// Config with a given τ, other knobs default.
    pub fn with_tau(max_tokens: usize) -> Self {
        PatternConfig {
            max_tokens,
            ..Default::default()
        }
    }
}

/// The strict coarse pattern of a value: one token per run (digits →
/// `<num>`, letters → `<letter>+`, whitespace/symbols as literals),
/// mirroring the paper's step-1 lexer output, e.g.
/// `"<num>/<num>/<num> <num>:<num>:<num> <letter>+"`.
pub fn coarse_pattern(value: &str) -> Pattern {
    tokenize(value)
        .iter()
        .map(|run| match run.class {
            CharClass::Digit => Token::Num,
            CharClass::Letter => Token::LetterPlus,
            CharClass::Space | CharClass::Symbol => Token::lit(run.text),
        })
        .collect()
}

/// One candidate generalization of a run, in borrowed form: literals stay
/// `&str` slices of the value so option *enumeration* allocates nothing —
/// a `Token::Lit` box is only built when a position first records the
/// literal (see `analyze`).
#[derive(Debug, Clone)]
pub(crate) enum RunOption<'a> {
    /// The literal constant (leaf of the hierarchy).
    Lit(&'a str),
    /// A class token (never `Token::Lit`).
    Tok(Token),
}

impl RunOption<'_> {
    /// Materialize the owned token.
    pub(crate) fn into_token(self) -> Token {
        match self {
            RunOption::Lit(s) => Token::lit(s),
            RunOption::Tok(t) => t,
        }
    }

    /// Does this option denote the same token as `t`?
    #[inline]
    pub(crate) fn is_token(&self, t: &Token) -> bool {
        match (self, t) {
            (RunOption::Lit(s), Token::Lit(l)) => *s == &**l,
            (RunOption::Lit(_), _) => false,
            (RunOption::Tok(o), t) => o == t,
        }
    }
}

/// Per-position generalization options for one strict run, most specific
/// first. This is the §1 chain, extended with case-specific letter tokens.
pub(crate) fn for_each_run_option<'a>(
    run: &Run<'a>,
    cfg: &PatternConfig,
    mut f: impl FnMut(RunOption<'a>),
) {
    let k = run.len() as u16;
    f(RunOption::Lit(run.text));
    match run.class {
        CharClass::Digit => {
            f(RunOption::Tok(Token::Digit(k)));
            f(RunOption::Tok(Token::DigitPlus));
            f(RunOption::Tok(Token::Num));
            f(RunOption::Tok(Token::Alnum(k)));
            f(RunOption::Tok(Token::AlnumPlus));
        }
        CharClass::Letter => {
            if cfg.case_tokens {
                if run.text.chars().all(|c| c.is_ascii_uppercase()) {
                    f(RunOption::Tok(Token::Upper(k)));
                    f(RunOption::Tok(Token::UpperPlus));
                } else if run.text.chars().all(|c| c.is_ascii_lowercase()) {
                    f(RunOption::Tok(Token::Lower(k)));
                    f(RunOption::Tok(Token::LowerPlus));
                }
            }
            f(RunOption::Tok(Token::Letter(k)));
            f(RunOption::Tok(Token::LetterPlus));
            f(RunOption::Tok(Token::Alnum(k)));
            f(RunOption::Tok(Token::AlnumPlus));
        }
        CharClass::Space => {
            f(RunOption::Tok(Token::SpacePlus));
        }
        CharClass::Symbol => {
            f(RunOption::Tok(Token::Sym(k)));
            f(RunOption::Tok(Token::SymPlus));
        }
    }
    f(RunOption::Tok(Token::AnyPlus));
}

/// Owned-token form of [`for_each_run_option`] (tests and one-off callers).
#[cfg(test)]
pub(crate) fn run_options(run: &Run<'_>, cfg: &PatternConfig) -> Vec<Token> {
    let mut opts = Vec::with_capacity(8);
    for_each_run_option(run, cfg, |o| opts.push(o.into_token()));
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_pattern_of_datetime() {
        let p = coarse_pattern("9/07/2019 12:01:32 PM");
        assert_eq!(
            p.to_string(),
            "<num>/<num>/<num> <num>:<num>:<num> <letter>+"
        );
    }

    #[test]
    fn run_options_for_digit_follow_paper_chain() {
        let cfg = PatternConfig::default();
        let runs = tokenize("9");
        let opts = run_options(&runs[0], &cfg);
        // Const("9"), <digit>{1}, <digit>+, <num>, <alnum>{1}, <alnum>+, <any>+
        assert_eq!(opts.len(), 7);
        assert_eq!(opts[0], Token::lit("9"));
        assert_eq!(opts[1], Token::Digit(1));
        assert_eq!(opts[2], Token::DigitPlus);
        assert_eq!(opts[3], Token::Num);
        assert_eq!(opts[4], Token::Alnum(1));
        assert_eq!(opts[5], Token::AlnumPlus);
        assert_eq!(opts[6], Token::AnyPlus);
    }

    #[test]
    fn uppercase_run_offers_case_tokens() {
        let cfg = PatternConfig::default();
        let runs = tokenize("PM");
        let opts = run_options(&runs[0], &cfg);
        assert!(opts.contains(&Token::Upper(2)));
        assert!(opts.contains(&Token::UpperPlus));
        assert!(!opts.contains(&Token::Lower(2)));
    }

    #[test]
    fn mixed_case_letters_have_no_case_tokens() {
        let cfg = PatternConfig::default();
        let runs = tokenize("OnBooking");
        let opts = run_options(&runs[0], &cfg);
        assert!(!opts.contains(&Token::UpperPlus));
        assert!(!opts.contains(&Token::LowerPlus));
        assert!(opts.contains(&Token::LetterPlus));
    }

    #[test]
    fn case_tokens_can_be_disabled() {
        let cfg = PatternConfig {
            case_tokens: false,
            ..Default::default()
        };
        let runs = tokenize("PM");
        let opts = run_options(&runs[0], &cfg);
        assert!(!opts.contains(&Token::Upper(2)));
        assert!(opts.contains(&Token::Letter(2)));
    }

    #[test]
    fn symbol_and_space_chains() {
        let cfg = PatternConfig::default();
        let runs = tokenize("--- x");
        let sym_opts = run_options(&runs[0], &cfg);
        assert_eq!(
            sym_opts,
            vec![
                Token::lit("---"),
                Token::Sym(3),
                Token::SymPlus,
                Token::AnyPlus
            ]
        );
        let space_opts = run_options(&runs[1], &cfg);
        assert_eq!(
            space_opts,
            vec![Token::lit(" "), Token::SpacePlus, Token::AnyPlus]
        );
    }
}
