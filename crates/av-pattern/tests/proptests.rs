//! Property-based tests for the pattern language invariants.

use av_pattern::{
    analyze_column, coarse_pattern, hypothesis_space, matches, parse, patterns_of_value,
    token_count, tokenize, Pattern, PatternConfig, Token,
};
use proptest::prelude::*;

/// Strategy: machine-generated-looking values (ASCII, short).
fn machine_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 :/._-]{0,24}").expect("valid regex")
}

/// Strategy: arbitrary short strings (including unicode).
fn any_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..12).prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// Tokenize must partition the value: concatenation reconstructs it.
    #[test]
    fn tokenize_partitions(v in any_value()) {
        let runs = tokenize(&v);
        let joined: String = runs.iter().map(|r| r.text).collect();
        prop_assert_eq!(joined, v);
    }

    /// token_count agrees with tokenize().len().
    #[test]
    fn token_count_agrees(v in any_value()) {
        prop_assert_eq!(token_count(&v), tokenize(&v).len());
    }

    /// Adjacent runs never share a class (runs are maximal).
    #[test]
    fn runs_are_maximal(v in any_value()) {
        let runs = tokenize(&v);
        for w in runs.windows(2) {
            prop_assert_ne!(w[0].class, w[1].class);
        }
    }

    /// Every pattern generated for a value matches that value
    /// (generation ⊆ matching: the core soundness property tying Alg. 1
    /// to Def. 1's membership test).
    #[test]
    fn generated_patterns_match_value(v in machine_value()) {
        let cfg = PatternConfig { max_patterns: 256, ..Default::default() };
        for p in patterns_of_value(&v, &cfg) {
            prop_assert!(matches(&p, &v), "{} should match {:?}", p, v);
        }
    }

    /// The coarse pattern always matches its own value.
    #[test]
    fn coarse_pattern_matches(v in machine_value()) {
        let p = coarse_pattern(&v);
        if !v.is_empty() {
            prop_assert!(matches(&p, &v), "{} should match {:?}", p, v);
        }
    }

    /// Hypothesis-space patterns match every value of the column.
    #[test]
    fn hypothesis_matches_all(col in proptest::collection::vec(machine_value(), 1..8)) {
        let cfg = PatternConfig { max_patterns: 128, ..Default::default() };
        for p in hypothesis_space(&col, &cfg) {
            for v in &col {
                prop_assert!(matches(&p, v), "{} should match {:?}", p, v);
            }
        }
    }

    /// Display → parse round-trips for generated patterns.
    #[test]
    fn display_parse_roundtrip(v in machine_value()) {
        let cfg = PatternConfig { max_patterns: 64, ..Default::default() };
        for p in patterns_of_value(&v, &cfg) {
            let printed = p.to_string();
            let parsed = parse(&printed).unwrap();
            // Parsing coalesces adjacent literals, so compare via display.
            prop_assert_eq!(parsed.to_string(), printed);
        }
    }

    /// Fingerprints are deterministic and display-stable.
    #[test]
    fn fingerprint_deterministic(v in machine_value()) {
        let cfg = PatternConfig::default();
        for p in patterns_of_value(&v, &cfg).into_iter().take(16) {
            let clone = Pattern::new(p.tokens().to_vec());
            prop_assert_eq!(p.fingerprint(), clone.fingerprint());
        }
    }

    /// analyze_column group counts sum to the total (no values lost at
    /// coverage_frac = 0), positions at least cover the merged key arity
    /// (strict splitting can only add positions), and every position keeps
    /// at least one option.
    #[test]
    fn analyze_column_invariants(col in proptest::collection::vec(machine_value(), 1..12)) {
        let cfg = PatternConfig { coverage_frac: 0.0, ..Default::default() };
        let cp = analyze_column(&col, &cfg);
        let sum: usize = cp.groups.iter().map(|g| g.count).sum();
        prop_assert_eq!(sum, col.len());
        for g in &cp.groups {
            prop_assert!(g.positions.len() >= g.key.len());
            prop_assert!(g.sample_size >= 1);
            for pos in &g.positions {
                prop_assert!(!pos.options.is_empty(), "every position keeps at least one option");
            }
        }
    }

    /// Enumerated supports are exact: a pattern with support k must match
    /// exactly k of the sampled values under the matcher.
    #[test]
    fn supports_agree_with_matcher(col in proptest::collection::vec(machine_value(), 1..8)) {
        let cfg = PatternConfig { coverage_frac: 0.0, max_patterns: 128, ..Default::default() };
        let cp = analyze_column(&col, &cfg);
        for g in &cp.groups {
            for sp in g.enumerate(&cfg) {
                let matched = col.iter().filter(|v| matches(&sp.pattern, v)).count();
                // Matching can only be broader than generation (e.g. <num>
                // spanning a float that generation treats as three runs).
                prop_assert!(
                    matched >= sp.support,
                    "{} support {} but matches {}", sp.pattern, sp.support, matched
                );
            }
        }
    }

    /// The trivial all-<any>+ pattern matches any non-empty string; our
    /// is_trivial flag identifies exactly the patterns excluded from H(C).
    #[test]
    fn trivial_exclusion(col in proptest::collection::vec(machine_value(), 1..6)) {
        let cfg = PatternConfig::default();
        for p in hypothesis_space(&col, &cfg) {
            prop_assert!(!p.is_trivial());
        }
    }
}

#[test]
fn num_token_generation_and_matching_agree_on_digit_runs() {
    // For pure digit strings, <num> is generated and matches.
    let cfg = PatternConfig::default();
    for v in ["0", "42", "00123"] {
        let pv = patterns_of_value(v, &cfg);
        let num: Pattern = vec![Token::Num].into();
        assert!(pv.contains(&num), "P({v:?}) should contain <num>");
        assert!(matches(&num, v));
    }
}
