//! Streaming-enumeration equivalence: the fingerprint-first DFS
//! (`CoarseGroup::for_each_pattern` / `stream_column_profile`) must emit
//! exactly what the materializing path produces — same patterns, same
//! supports, same order, same fingerprints, same canonical token counts.
//!
//! The reference below is the pre-streaming implementation (clone a
//! `BitSet` per DFS child, build every `Pattern`, recount support at
//! emission), reconstructed over the public API so the oracle shares no
//! code with the production DFS.

use av_pattern::{
    analyze_column, column_pattern_profile, stream_column_profile, BitSet, CoarseGroup,
    EnumScratch, Pattern, PatternConfig, Token,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// The old materializing enumeration, kept verbatim as the test oracle.
fn reference_enumerate(
    group: &CoarseGroup,
    start: usize,
    end: usize,
    min_support: usize,
    cfg: &PatternConfig,
) -> Vec<(Pattern, usize)> {
    if start == end {
        return vec![(Pattern::empty(), group.sample_size)];
    }
    let mut positions: Vec<Vec<(Token, BitSet)>> = group.positions[start..end]
        .iter()
        .map(|p| p.options.clone())
        .collect();
    loop {
        let product: u128 = positions.iter().map(|p| p.len() as u128).product();
        if product <= cfg.max_patterns as u128 {
            break;
        }
        let widest = positions
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .expect("positions non-empty");
        if positions[widest].len() <= 1 {
            break;
        }
        positions[widest].remove(0);
    }
    let full = {
        let mut b = BitSet::new(group.sample_size);
        for i in 0..group.sample_size {
            b.set(i);
        }
        b
    };
    let mut out = Vec::new();
    let mut stack: Vec<Token> = Vec::new();
    reference_rec(
        &positions,
        0,
        &full,
        min_support.max(1),
        &mut stack,
        &mut out,
    );
    out.retain(|(p, _)| !is_trivial(p));
    out
}

fn is_trivial(p: &Pattern) -> bool {
    !p.is_empty() && p.tokens().iter().all(|t| matches!(t, Token::AnyPlus))
}

fn reference_rec(
    positions: &[Vec<(Token, BitSet)>],
    depth: usize,
    support: &BitSet,
    min_support: usize,
    stack: &mut Vec<Token>,
    out: &mut Vec<(Pattern, usize)>,
) {
    if depth == positions.len() {
        out.push((Pattern::new(stack.clone()), support.count()));
        return;
    }
    for (token, bits) in &positions[depth] {
        let mut next = support.clone();
        next.and_assign(bits);
        if next.count() < min_support {
            continue;
        }
        stack.push(token.clone());
        reference_rec(positions, depth + 1, &next, min_support, stack, out);
        stack.pop();
    }
}

/// The old per-column profile: enumerate per group, merge by `Pattern`.
fn reference_profile(values: &[String], cfg: &PatternConfig, tau: usize) -> Vec<(Pattern, f64)> {
    let narrow: Vec<&str> = values
        .iter()
        .map(|v| v.as_str())
        .filter(|v| av_pattern::merged_token_count(v) <= tau)
        .collect();
    if narrow.is_empty() {
        return Vec::new();
    }
    let total = values.len();
    let analysis = analyze_column(&narrow, cfg);
    let mut acc: HashMap<Pattern, f64> = HashMap::new();
    for g in &analysis.groups {
        if g.sample_size == 0 {
            continue;
        }
        let scale = (g.count as f64 / g.sample_size as f64) / total as f64;
        for (pattern, support) in reference_enumerate(g, 0, g.positions.len(), 1, cfg) {
            *acc.entry(pattern).or_insert(0.0) += support as f64 * scale;
        }
    }
    let mut out: Vec<(Pattern, f64)> = acc.into_iter().collect();
    out.sort_by(|(a, _), (b, _)| a.cmp(b));
    out
}

fn machine_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 :/.|_-]{0,18}").expect("valid regex")
}

fn column() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(machine_value(), 1..10)
}

fn configs() -> Vec<PatternConfig> {
    vec![
        PatternConfig::default(),
        // Tiny cap exercises the trim loop.
        PatternConfig {
            max_patterns: 8,
            ..Default::default()
        },
        PatternConfig {
            max_patterns: 64,
            case_tokens: false,
            ..Default::default()
        },
    ]
}

proptest! {
    /// Streamed emissions equal the materializing oracle, element for
    /// element: fingerprint, support, canonical token count, display form,
    /// and emission order.
    #[test]
    fn streaming_matches_materializing_enumeration(col in column()) {
        for cfg in configs() {
            let analysis = analyze_column(&col, &cfg);
            for group in &analysis.groups {
                for min_support in [1usize, group.sample_size.div_ceil(2), group.sample_size] {
                    let expected = reference_enumerate(group, 0, group.positions.len(), min_support, &cfg);
                    let mut got: Vec<(u64, usize, usize, String)> = Vec::new();
                    let mut scratch = EnumScratch::default();
                    group.for_each_pattern(0, group.positions.len(), min_support, &cfg, &mut scratch, |sp| {
                        got.push((sp.fingerprint, sp.support, sp.token_len, sp.display()));
                    });
                    prop_assert_eq!(got.len(), expected.len());
                    for ((fp, support, token_len, display), (pattern, ref_support)) in
                        got.iter().zip(&expected)
                    {
                        prop_assert_eq!(*fp, pattern.fingerprint());
                        prop_assert_eq!(*support, *ref_support);
                        prop_assert_eq!(*token_len, pattern.len());
                        prop_assert_eq!(display, &pattern.to_string());
                    }
                }
            }
        }
    }

    /// Segment enumeration (the vertical-cut building block) agrees with
    /// the oracle on every sub-range.
    #[test]
    fn streaming_matches_materializing_segments(col in column()) {
        let cfg = PatternConfig { max_patterns: 32, ..Default::default() };
        let analysis = analyze_column(&col, &cfg);
        for group in &analysis.groups {
            let n = group.positions.len().min(4);
            for s in 0..=n {
                for e in s..=n {
                    let expected = reference_enumerate(group, s, e, 1, &cfg);
                    let got = group.enumerate_segment(s, e, 1, &cfg);
                    prop_assert_eq!(got.len(), expected.len());
                    for (sp, (pattern, support)) in got.iter().zip(&expected) {
                        prop_assert_eq!(&sp.pattern, pattern);
                        prop_assert_eq!(sp.support, *support);
                    }
                }
            }
        }
    }

    /// The streamed column profile, merged by fingerprint, is exactly the
    /// materializing profile (fractions compared bit-for-bit), and the
    /// `column_pattern_profile` wrapper still reports the old shape.
    #[test]
    fn streamed_profile_matches_reference(col in column()) {
        let cfg = PatternConfig { max_patterns: 128, ..Default::default() };
        for tau in [3usize, 13] {
            let expected = reference_profile(&col, &cfg, tau);
            let wrapper = column_pattern_profile(&col, &cfg, tau);
            prop_assert_eq!(wrapper.len(), expected.len());
            for ((wp, wf), (ep, ef)) in wrapper.iter().zip(&expected) {
                prop_assert_eq!(wp, ep);
                prop_assert_eq!(wf.to_bits(), ef.to_bits());
            }
            let mut streamed: HashMap<u64, f64> = HashMap::new();
            let mut scratch = EnumScratch::default();
            stream_column_profile(&col, &cfg, tau, &mut scratch, |sp, frac| {
                *streamed.entry(sp.fingerprint).or_insert(0.0) += frac;
            });
            prop_assert_eq!(streamed.len(), expected.len());
            for (pattern, frac) in &expected {
                let got = streamed.get(&pattern.fingerprint());
                prop_assert_eq!(got.map(|f| f.to_bits()), Some(frac.to_bits()));
            }
        }
    }
}
