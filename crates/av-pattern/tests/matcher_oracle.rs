//! Compiled ≡ reference matcher equivalence.
//!
//! The character-level memoized matcher ([`av_pattern::matches`]) is the
//! oracle: it is the closest transcription of Def. 1. The byte-level
//! [`CompiledPattern`] program must return the *identical* verdict on every
//! (pattern, value) pair — fused scans, minimum-width pruning, and the
//! explicit backtracking stack are allowed to change how fast the answer
//! arrives, never what it is.

use av_pattern::{matches, CompiledPattern, MatchScratch, Pattern, Token};
use proptest::prelude::*;

/// Strategy: one arbitrary token, covering every variant (widths include 0,
/// which the hierarchy never emits but the matcher must still handle).
fn arb_token() -> impl Strategy<Value = Token> {
    prop_oneof![
        proptest::string::string_regex("[a-zA-Z0-9:/ .é°_-]{1,3}")
            .expect("valid regex")
            .prop_map(Token::lit),
        (0u16..4).prop_map(Token::Digit),
        Just(Token::DigitPlus),
        Just(Token::Num),
        (0u16..3).prop_map(Token::Upper),
        Just(Token::UpperPlus),
        (0u16..3).prop_map(Token::Lower),
        Just(Token::LowerPlus),
        (0u16..4).prop_map(Token::Letter),
        Just(Token::LetterPlus),
        (0u16..4).prop_map(Token::Alnum),
        Just(Token::AlnumPlus),
        (0u16..3).prop_map(Token::Sym),
        Just(Token::SymPlus),
        Just(Token::SpacePlus),
        Just(Token::AnyPlus),
    ]
}

/// Strategy: an arbitrary pattern of up to 8 tokens.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    proptest::collection::vec(arb_token(), 0..8).prop_map(Pattern::new)
}

/// Strategy: machine-shaped values plus symbol/unicode noise — enough
/// overlap with `arb_token`'s alphabets that accepting paths are exercised,
/// not just trivial rejections.
fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::string::string_regex("[A-Za-z0-9:/ ._-]{0,16}").expect("valid regex"),
        proptest::string::string_regex("[0-9.]{1,10}").expect("valid regex"),
        proptest::collection::vec(any::<char>(), 0..8).prop_map(|v| v.into_iter().collect()),
    ]
}

/// A value *derived from* the pattern, stretching each variadic token by
/// `stretch` characters — these values usually match, driving the compiled
/// matcher down its accepting and backtracking paths.
fn value_from(pattern: &Pattern, stretch: usize) -> String {
    let mut out = String::new();
    for t in pattern.tokens() {
        let (sample, fixed) = match t {
            Token::Lit(s) => {
                out.push_str(s);
                continue;
            }
            Token::Digit(n) => ('7', Some(*n as usize)),
            Token::Upper(n) => ('K', Some(*n as usize)),
            Token::Lower(n) => ('k', Some(*n as usize)),
            Token::Letter(n) => ('m', Some(*n as usize)),
            Token::Alnum(n) => ('4', Some(*n as usize)),
            Token::Sym(n) => ('-', Some(*n as usize)),
            Token::DigitPlus | Token::Num => ('3', None),
            Token::UpperPlus => ('Q', None),
            Token::LowerPlus => ('q', None),
            Token::LetterPlus => ('z', None),
            Token::AlnumPlus => ('8', None),
            Token::SymPlus => ('/', None),
            Token::SpacePlus => (' ', None),
            Token::AnyPlus => ('°', None),
        };
        let n = fixed.unwrap_or(1 + stretch);
        for _ in 0..n {
            out.push(sample);
        }
    }
    out
}

fn assert_equivalent(pattern: &Pattern, value: &str, scratch: &mut MatchScratch) {
    let compiled = CompiledPattern::compile(pattern);
    let oracle = matches(pattern, value);
    assert_eq!(
        compiled.matches(value),
        oracle,
        "compiled vs oracle on {pattern} ~ {value:?}"
    );
    assert_eq!(
        compiled.matches_with(value, scratch),
        oracle,
        "compiled (reused scratch) vs oracle on {pattern} ~ {value:?}"
    );
}

proptest! {
    /// Arbitrary pattern × arbitrary value: identical verdicts.
    #[test]
    fn compiled_equals_reference_on_arbitrary_inputs(
        p in arb_pattern(),
        v in arb_value(),
    ) {
        let compiled = CompiledPattern::compile(&p);
        prop_assert_eq!(compiled.matches(&v), matches(&p, &v), "{} ~ {:?}", p, v);
    }

    /// Pattern-derived values (mostly accepting, with variadic stretching)
    /// and their single-character corruptions: identical verdicts, both
    /// through the thread-local path and a reused scratch.
    #[test]
    fn compiled_equals_reference_on_derived_values(
        p in arb_pattern(),
        stretch in 0usize..3,
    ) {
        let mut scratch = MatchScratch::default();
        let derived = value_from(&p, stretch);
        assert_equivalent(&p, &derived, &mut scratch);
        let mut corrupted = derived.clone();
        corrupted.pop();
        assert_equivalent(&p, &corrupted, &mut scratch);
        assert_equivalent(&p, &format!("{derived}~"), &mut scratch);
        assert_equivalent(&p, "", &mut scratch);
    }
}

/// The recursive reference matcher descends one Rust stack frame per token,
/// so a 10 000-token pattern is a stack overflow waiting on the right
/// (debug-build, small-stack) thread. The compiled matcher keeps its
/// backtracking frames on the heap: wide patterns are just wide loops.
/// (The reference matcher is deliberately *not* called on these inputs.)
#[test]
fn ten_thousand_token_pattern_runs_on_the_heap() {
    // 5 000 × (<digit>+ "-"): 10 000 tokens, 5 000 of them branch points —
    // none fuse, so this genuinely exercises program width and stack depth.
    let mut tokens = Vec::with_capacity(10_000);
    for _ in 0..5_000 {
        tokens.push(Token::DigitPlus);
        tokens.push(Token::lit("-"));
    }
    let pattern = Pattern::new(tokens);
    let compiled = CompiledPattern::compile(&pattern);
    assert_eq!(compiled.num_instructions(), 10_000);

    let mut scratch = MatchScratch::default();
    let good = "1-".repeat(5_000);
    assert!(compiled.matches_with(&good, &mut scratch));
    let wide = "123-".repeat(5_000);
    assert!(compiled.matches_with(&wide, &mut scratch));
    // One byte short: rejected by the minimum-width prune alone.
    assert!(!compiled.matches_with(&good[..good.len() - 1], &mut scratch));
    // Right length, wrong byte in the middle.
    let mut bad = good.clone().into_bytes();
    bad[5_001] = b'x';
    let bad = String::from_utf8(bad).unwrap();
    assert!(!compiled.matches_with(&bad, &mut scratch));
}

/// Same shape at a width the oracle *can* handle on a main-thread stack:
/// the two matchers agree right up to the fusion and width edge cases.
#[test]
fn wide_pattern_agrees_with_reference_at_oracle_safe_width() {
    let mut tokens = Vec::new();
    for _ in 0..200 {
        tokens.push(Token::DigitPlus);
        tokens.push(Token::lit("-"));
    }
    let pattern = Pattern::new(tokens);
    let compiled = CompiledPattern::compile(&pattern);
    for value in [
        "1-".repeat(200),
        "42-".repeat(200),
        "1-".repeat(199),
        format!("{}x-", "1-".repeat(199)),
    ] {
        assert_eq!(
            compiled.matches(&value),
            matches(&pattern, &value),
            "{value:?}"
        );
    }
}
