//! Explain ≡ reference furthest-reach equivalence.
//!
//! `CompiledPattern::explain` reports where a failed match got furthest:
//! the length of the longest prefix of the value that is also a prefix of
//! some accepted string. [`av_pattern::furthest_mismatch`] computes the
//! same quantity on the character-level reference matcher; the two must
//! agree on every (pattern, value) pair — fusion, byte-level scanning, and
//! the absent minimum-width prune may change how the answer is found,
//! never what it is. `explain` must also return `None` exactly when
//! `matches` returns true.

use av_pattern::{furthest_mismatch, CompiledPattern, MatchScratch, Pattern, Token};
use proptest::prelude::*;

/// Strategy: one arbitrary token, covering every variant (widths include 0,
/// which the hierarchy never emits but the matcher must still handle).
fn arb_token() -> impl Strategy<Value = Token> {
    prop_oneof![
        proptest::string::string_regex("[a-zA-Z0-9:/ .é°_-]{1,3}")
            .expect("valid regex")
            .prop_map(Token::lit),
        (0u16..4).prop_map(Token::Digit),
        Just(Token::DigitPlus),
        Just(Token::Num),
        (0u16..3).prop_map(Token::Upper),
        Just(Token::UpperPlus),
        (0u16..3).prop_map(Token::Lower),
        Just(Token::LowerPlus),
        (0u16..4).prop_map(Token::Letter),
        Just(Token::LetterPlus),
        (0u16..4).prop_map(Token::Alnum),
        Just(Token::AlnumPlus),
        (0u16..3).prop_map(Token::Sym),
        Just(Token::SymPlus),
        Just(Token::SpacePlus),
        Just(Token::AnyPlus),
    ]
}

/// Strategy: an arbitrary pattern of up to 8 tokens.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    proptest::collection::vec(arb_token(), 0..8).prop_map(Pattern::new)
}

/// Strategy: machine-shaped values plus symbol/unicode noise — enough
/// overlap with `arb_token`'s alphabets that deep partial matches are
/// exercised, not just position-zero rejections.
fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::string::string_regex("[A-Za-z0-9:/ ._-]{0,16}").expect("valid regex"),
        proptest::string::string_regex("[0-9.]{1,10}").expect("valid regex"),
        proptest::collection::vec(any::<char>(), 0..8).prop_map(|v| v.into_iter().collect()),
    ]
}

/// A value *derived from* the pattern, stretching each variadic token —
/// these values usually match or almost match, driving explain deep into
/// the program instead of failing at byte 0.
fn value_from(pattern: &Pattern, stretch: usize) -> String {
    let mut out = String::new();
    for t in pattern.tokens() {
        let (sample, fixed) = match t {
            Token::Lit(s) => {
                out.push_str(s);
                continue;
            }
            Token::Digit(n) => ('7', Some(*n as usize)),
            Token::Upper(n) => ('K', Some(*n as usize)),
            Token::Lower(n) => ('k', Some(*n as usize)),
            Token::Letter(n) => ('m', Some(*n as usize)),
            Token::Alnum(n) => ('4', Some(*n as usize)),
            Token::Sym(n) => ('-', Some(*n as usize)),
            Token::DigitPlus | Token::Num => ('3', None),
            Token::UpperPlus => ('Q', None),
            Token::LowerPlus => ('q', None),
            Token::LetterPlus => ('z', None),
            Token::AlnumPlus => ('8', None),
            Token::SymPlus => ('/', None),
            Token::SpacePlus => (' ', None),
            Token::AnyPlus => ('°', None),
        };
        let n = fixed.unwrap_or(1 + stretch);
        for _ in 0..n {
            out.push(sample);
        }
    }
    out
}

/// The invariant under test: explain agrees with the reference on both the
/// verdict (None ⇔ matches) and the furthest-reached byte offset, through
/// the thread-local path and a reused scratch alike. Traces must also be
/// internally consistent: char-aligned offsets, a valid span, an
/// instruction index within the program.
fn assert_explain_matches_reference(pattern: &Pattern, value: &str, scratch: &mut MatchScratch) {
    let compiled = CompiledPattern::compile(pattern);
    let oracle = furthest_mismatch(pattern, value);
    let trace = compiled.explain_with(value, scratch);
    assert_eq!(
        trace.as_ref().map(|t| t.failed_at),
        oracle,
        "explain vs reference furthest on {pattern} ~ {value:?}"
    );
    assert_eq!(
        compiled.explain(value).as_ref().map(|t| t.failed_at),
        oracle,
        "explain (thread-local path) vs reference on {pattern} ~ {value:?}"
    );
    assert_eq!(
        trace.is_none(),
        compiled.matches(value),
        "explain None ⇔ matches on {pattern} ~ {value:?}"
    );
    if let Some(t) = trace {
        assert!(value.is_char_boundary(t.failed_at), "{pattern} ~ {value:?}");
        assert!(value.is_char_boundary(t.span_end), "{pattern} ~ {value:?}");
        assert!(t.failed_at <= t.span_end && t.span_end <= value.len());
        assert_eq!(t.span_end == t.failed_at, t.failed_at == value.len());
        assert!(t.inst <= t.num_insts);
        assert_eq!(t.num_insts, compiled.num_instructions());
        assert_eq!(t.expected, compiled.describe_inst(t.inst));
    }
}

proptest! {
    /// Arbitrary pattern × arbitrary value.
    #[test]
    fn explain_equals_reference_on_arbitrary_inputs(
        p in arb_pattern(),
        v in arb_value(),
    ) {
        let mut scratch = MatchScratch::default();
        assert_explain_matches_reference(&p, &v, &mut scratch);
    }

    /// Pattern-derived values and their corruptions: near-misses fail deep
    /// inside the program, where fusion and backtracking could disagree
    /// with the reference about how far the match got.
    #[test]
    fn explain_equals_reference_on_derived_values(
        p in arb_pattern(),
        stretch in 0usize..3,
    ) {
        let mut scratch = MatchScratch::default();
        let derived = value_from(&p, stretch);
        assert_explain_matches_reference(&p, &derived, &mut scratch);
        let mut truncated = derived.clone();
        truncated.pop();
        assert_explain_matches_reference(&p, &truncated, &mut scratch);
        assert_explain_matches_reference(&p, &format!("{derived}~"), &mut scratch);
        assert_explain_matches_reference(&p, "", &mut scratch);
    }
}
