//! # auto-validate
//!
//! A from-scratch Rust reproduction of **"Auto-Validate: Unsupervised Data
//! Validation Using Data-Domain Patterns Inferred from Data Lakes"**
//! (Jie Song and Yeye He, SIGMOD 2021).
//!
//! Recurring data pipelines break silently when upstream feeds drift.
//! Auto-Validate infers regex-like **data-domain patterns** for
//! string-valued columns by consulting a large corpus of columns from the
//! same data lake: a pattern is a good validator when it (1) rarely splits
//! corpus columns into matching and non-matching parts (low estimated
//! false-positive rate) and (2) matches many corpus columns (coverage).
//!
//! ## Quick start
//!
//! One fluent builder configures the whole stack, and every inferred rule
//! is a [`prelude::Validator`]: borrowed `&str` inputs end to end, batch or
//! streaming, with identical results.
//!
//! ```
//! use auto_validate::prelude::*;
//!
//! // 1. A corpus T — here a small synthetic lake; in production, your own.
//! let corpus = generate_lake(&LakeProfile::tiny(), 42);
//! let columns: Vec<&Column> = corpus.columns().collect();
//!
//! // 2. One builder covers indexing, pattern generation, and FMDV knobs.
//! let builder = AutoValidateBuilder::new().fpr_target(0.1).tau(13);
//! let index = builder.build_index(&columns); // offline: one scan (§2.4)
//! let engine = builder.engine(&index); //        online: milliseconds/rule
//!
//! // 3. Infer a validation rule — training values are borrowed, never
//! //    copied (any &str iterator works).
//! let train: Vec<String> = (1..=30).map(|d| format!("2019-03-{d:02}")).collect();
//! let rule = engine.infer_default(&train).expect("rule");
//!
//! // 4. Validate future data through the unified Validator trait: same
//! //    domain passes, drifted data is flagged.
//! let april: Vec<String> = (1..=30).map(|d| format!("2019-04-{d:02}")).collect();
//! assert!(!rule.validate_batch(april.iter().map(String::as_str)).flagged);
//!
//! // …or stream values one at a time in O(1) memory; `finish()` is
//! // bit-identical to the batch report.
//! let mut session = rule.session();
//! for d in 1..=30 {
//!     session.push(&format!("user-{d}"));
//! }
//! assert!(session.finish().flagged);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`av_pattern`] | pattern language, tokenizer, `P(v)`/`H(C)` enumeration, matcher |
//! | [`av_index`] | offline corpus index: pattern → (FPR, coverage) |
//! | [`av_core`] | FMDV, FMDV-V, FMDV-H, FMDV-VH, CMDV, Auto-Tag; the unified `Validator` trait, streaming `ValidationSession`, `AutoValidateBuilder` |
//! | [`av_match`] | catalog-wide multi-pattern matcher: NFA union + lazy DFA cache, one scan classifies a value against every rule |
//! | [`av_stats`] | Fisher's exact test, χ² with Yates, special functions |
//! | [`av_corpus`] | synthetic data lakes, domain generators, benchmarks |
//! | [`av_baselines`] | TFDV, Deequ, Potter's Wheel, Grok, schema matching, … |
//! | [`av_eval`] | the §5.1 evaluation methodology |
//! | [`av_ml`] | GBDT + encoders for the Fig. 15 case study |
//! | [`av_regex`] | small regex engine (NFA/Pike VM) used by baselines |
//! | [`av_service`] | long-running validation service: shared live index, persistent rule catalog, concurrent batch validation, incremental ingestion, `dyn Validator` dispatch of FMDV + baseline rules |
//!
//! ## Running as a service
//!
//! The paper deploys Auto-Validate as a long-running production service;
//! [`av_service`] is that shape. Rules are inferred once, named, persisted
//! in a catalog, and survive restarts; new corpus columns merge into the
//! live index incrementally (no rebuild):
//!
//! ```
//! use av_service::{ServiceConfig, ValidationService};
//! use auto_validate::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!("av_doc_{}", std::process::id()));
//! let corpus = generate_lake(&LakeProfile::tiny(), 42);
//! let columns: Vec<Column> = corpus.columns().cloned().collect();
//!
//! // First run: ingest, infer a named rule, persist.
//! let service = ValidationService::new(ServiceConfig::with_data_dir(&dir));
//! service.ingest(&columns).unwrap();
//! let march: Vec<String> = (1..=30).map(|d| format!("2019-03-{d:02}")).collect();
//! service.infer_rule("feeds/date", &march, None).unwrap();
//! service.persist().unwrap();
//! drop(service);
//!
//! // Restart: catalog and index reload from disk; validation just works.
//! let service = ValidationService::open(ServiceConfig::with_data_dir(&dir)).unwrap();
//! let drifted: Vec<String> = (0..30).map(|i| format!("user-{i}")).collect();
//! assert!(service.validate("feeds/date", &drifted).unwrap().flagged);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! The `av-serve` binary exposes the same engine over a JSONL protocol on
//! stdin/stdout or TCP (see `av_service::protocol`).

pub use av_baselines;
pub use av_core;
pub use av_corpus;
pub use av_eval;
pub use av_index;
pub use av_match;
pub use av_ml;
pub use av_pattern;
pub use av_regex;
pub use av_service;
pub use av_stats;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use av_core::{
        nearest_conforming_rule, program_distance, AnyRule, AutoValidate, AutoValidateBuilder,
        DictionaryRule, Explanation, FmdvConfig, InferError, Report, RuleSet, TagRule, TagSet,
        Tally, ValidationReport, ValidationRule, ValidationSession, Validator, Variant, Verdict,
    };
    pub use av_corpus::{generate_lake, Benchmark, Column, Corpus, LakeProfile, Table};
    pub use av_index::{IndexConfig, IndexDelta, PatternIndex};
    pub use av_match::{CatalogMatcher, MatcherConfig};
    pub use av_pattern::{matches, parse, Pattern, PatternConfig, Token};
    pub use av_service::{ClassifyOutcome, RuleCatalog, ServiceConfig, ValidationService};
}
