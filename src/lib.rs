//! # auto-validate
//!
//! A from-scratch Rust reproduction of **"Auto-Validate: Unsupervised Data
//! Validation Using Data-Domain Patterns Inferred from Data Lakes"**
//! (Jie Song and Yeye He, SIGMOD 2021).
//!
//! Recurring data pipelines break silently when upstream feeds drift.
//! Auto-Validate infers regex-like **data-domain patterns** for
//! string-valued columns by consulting a large corpus of columns from the
//! same data lake: a pattern is a good validator when it (1) rarely splits
//! corpus columns into matching and non-matching parts (low estimated
//! false-positive rate) and (2) matches many corpus columns (coverage).
//!
//! ## Quick start
//!
//! ```
//! use auto_validate::prelude::*;
//!
//! // 1. A corpus T — here a small synthetic lake; in production, your own.
//! let corpus = generate_lake(&LakeProfile::tiny(), 42);
//! let columns: Vec<&Column> = corpus.columns().collect();
//!
//! // 2. Offline: one scan of T builds the pattern index (§2.4).
//! let index = PatternIndex::build(&columns, &IndexConfig::default());
//!
//! // 3. Online: infer a validation rule for a query column in milliseconds.
//! let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));
//! let train: Vec<String> = (1..=30).map(|d| format!("2019-03-{d:02}")).collect();
//! let rule = engine.infer_default(&train).expect("rule");
//!
//! // 4. Validate future data: same domain passes, drifted data is flagged.
//! let april: Vec<String> = (1..=30).map(|d| format!("2019-04-{d:02}")).collect();
//! assert!(!rule.validate(&april).flagged);
//! let drifted: Vec<String> = (1..=30).map(|d| format!("user-{d}")).collect();
//! assert!(rule.validate(&drifted).flagged);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`av_pattern`] | pattern language, tokenizer, `P(v)`/`H(C)` enumeration, matcher |
//! | [`av_index`] | offline corpus index: pattern → (FPR, coverage) |
//! | [`av_core`] | FMDV, FMDV-V, FMDV-H, FMDV-VH, CMDV, Auto-Tag |
//! | [`av_stats`] | Fisher's exact test, χ² with Yates, special functions |
//! | [`av_corpus`] | synthetic data lakes, domain generators, benchmarks |
//! | [`av_baselines`] | TFDV, Deequ, Potter's Wheel, Grok, schema matching, … |
//! | [`av_eval`] | the §5.1 evaluation methodology |
//! | [`av_ml`] | GBDT + encoders for the Fig. 15 case study |
//! | [`av_regex`] | small regex engine (NFA/Pike VM) used by baselines |

#![warn(missing_docs)]

pub use av_baselines;
pub use av_core;
pub use av_corpus;
pub use av_eval;
pub use av_index;
pub use av_ml;
pub use av_pattern;
pub use av_regex;
pub use av_stats;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use av_core::{
        AnyRule, AutoValidate, DictionaryRule, FmdvConfig, InferError, TagRule,
        ValidationReport, ValidationRule, Variant,
    };
    pub use av_corpus::{generate_lake, Benchmark, Column, Corpus, LakeProfile, Table};
    pub use av_index::{IndexConfig, PatternIndex};
    pub use av_pattern::{matches, parse, Pattern, PatternConfig, Token};
}
