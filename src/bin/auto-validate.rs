//! `auto-validate` — command-line interface to the library.
//!
//! Columns are plain text files with one value per line (the universal
//! interchange format for single-column data). Typical session:
//!
//! ```sh
//! # offline: index a directory of column files (one scan)
//! auto-validate index data/columns/ -o lake.avix
//!
//! # online: infer a validation rule for a new feed's column
//! auto-validate infer -i lake.avix train.txt
//!
//! # recurring: validate today's feed against yesterday's training data
//! auto-validate validate -i lake.avix --train train.txt --test today.txt
//!
//! # no data handy? generate a synthetic lake and play
//! auto-validate demo
//! ```

use auto_validate::prelude::*;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  auto-validate index <dir> [-o index.avix] [--tau N]
      Scan a directory of column files (one value per line) into an index.
  auto-validate infer -i <index.avix> <column.txt> [--variant fmdv|v|h|vh]
      Infer a validation rule for a column and print it (with regex export).
  auto-validate validate -i <index.avix> --train <a.txt> --test <b.txt>
      Train a rule on one file and validate another; exit 1 when flagged.
  auto-validate demo
      Generate a synthetic lake, infer and apply a rule end to end."
    );
    ExitCode::from(2)
}

fn read_column(path: &Path) -> Result<Vec<String>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(text.lines().map(|l| l.to_string()).collect())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with('-') {
            // All our flags take one value.
            skip = matches!(
                a.as_str(),
                "-o" | "-i" | "--tau" | "--variant" | "--train" | "--test"
            );
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

fn cmd_index(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let dir = pos.first().ok_or("missing column directory")?;
    let out = flag_value(args, "-o").unwrap_or_else(|| "index.avix".into());
    let tau: usize = flag_value(args, "--tau")
        .map(|v| v.parse().map_err(|_| "bad --tau"))
        .transpose()?
        .unwrap_or(13);
    let mut columns: Vec<Column> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        if !entry.file_type().map_err(|e| e.to_string())?.is_file() {
            continue;
        }
        let path = entry.path();
        let values = read_column(&path)?;
        if values.is_empty() {
            continue;
        }
        columns.push(Column {
            name: path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned(),
            values,
            meta: av_corpus::ColumnMeta::machine("file", None),
        });
    }
    if columns.is_empty() {
        return Err(format!("no column files found under {dir}"));
    }
    let refs: Vec<&Column> = columns.iter().collect();
    let config = IndexConfig {
        tau,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let index = PatternIndex::build(&refs, &config);
    index.save(&out).map_err(|e| e.to_string())?;
    println!(
        "indexed {} columns → {} patterns in {:.1?}; wrote {out}",
        index.num_columns,
        index.len(),
        t0.elapsed()
    );
    Ok(())
}

fn load_engine(args: &[String]) -> Result<(PatternIndex, FmdvConfig), String> {
    let index_path = flag_value(args, "-i").ok_or("missing -i <index.avix>")?;
    let index = PatternIndex::load(&index_path).map_err(|e| e.to_string())?;
    let mut config = FmdvConfig::scaled_for_corpus(index.num_columns);
    config.max_segment_tokens = index.tau;
    Ok((index, config))
}

fn parse_variant(args: &[String]) -> Variant {
    match flag_value(args, "--variant").as_deref() {
        Some("fmdv") => Variant::Fmdv,
        Some("v") => Variant::FmdvV,
        Some("h") => Variant::FmdvH,
        _ => Variant::FmdvVH,
    }
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let (index, config) = load_engine(args)?;
    let pos = positional(args);
    let column_path = pos.first().ok_or("missing column file")?;
    let train = read_column(Path::new(column_path))?;
    let engine = AutoValidate::new(&index, config);
    let t0 = std::time::Instant::now();
    match engine.infer(&train, parse_variant(args)) {
        Ok(rule) => {
            println!("rule     : {rule}");
            println!("regex    : /{}/", rule.to_regex());
            println!(
                "inferred : {:.1?} over {} training values",
                t0.elapsed(),
                train.len()
            );
            Ok(())
        }
        Err(e) => {
            // Fall back like infer_auto and report which family applied.
            match engine.infer_auto(&train) {
                Ok(rule) => {
                    println!(
                        "no syntactic pattern ({e}); fallback rule: {}",
                        rule.describe()
                    );
                    Ok(())
                }
                Err(_) => Err(format!("no rule inferable: {e}")),
            }
        }
    }
}

fn cmd_validate(args: &[String]) -> Result<bool, String> {
    let (index, config) = load_engine(args)?;
    let train_path = flag_value(args, "--train").ok_or("missing --train")?;
    let test_path = flag_value(args, "--test").ok_or("missing --test")?;
    let train = read_column(Path::new(&train_path))?;
    let test = read_column(Path::new(&test_path))?;
    let engine = AutoValidate::new(&index, config);
    let rule = engine
        .infer_auto(&train)
        .map_err(|e| format!("no rule inferable from {train_path}: {e}"))?;
    let report = rule.validate(&test);
    println!("rule          : {}", rule.describe());
    println!("checked       : {}", report.checked);
    println!(
        "nonconforming : {} ({:.2}%)",
        report.nonconforming,
        report.nonconforming_frac * 100.0
    );
    println!("p-value       : {:.3e}", report.p_value);
    println!(
        "verdict       : {}",
        if report.flagged { "FLAGGED" } else { "ok" }
    );
    Ok(report.flagged)
}

fn cmd_demo() -> Result<(), String> {
    println!("generating a 2000-column synthetic lake…");
    let corpus = generate_lake(&LakeProfile::tiny().scaled(2000), 7);
    let columns: Vec<&Column> = corpus.columns().collect();
    let index = PatternIndex::build(&columns, &IndexConfig::default());
    println!(
        "indexed {} patterns from {} columns",
        index.len(),
        index.num_columns
    );
    let engine = AutoValidate::new(&index, FmdvConfig::scaled_for_corpus(index.num_columns));
    let march: Vec<String> = (1..=28).map(|d| format!("Mar {d:02} 2019")).collect();
    let rule = engine.infer_default(&march).map_err(|e| e.to_string())?;
    println!("training column: Mar 01 2019 … Mar 28 2019");
    println!("inferred rule  : {rule}");
    let april: Vec<String> = (1..=30).map(|d| format!("Apr {d:02} 2019")).collect();
    println!(
        "April feed     : flagged = {}",
        rule.validate(&april).flagged
    );
    let drift: Vec<String> = (0..30).map(|i| format!("user-{i}")).collect();
    println!(
        "drifted feed   : flagged = {}",
        rule.validate(&drift).flagged
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest: Vec<String> = args[1..].to_vec();
    let result = match cmd.as_str() {
        "index" => cmd_index(&rest).map(|()| false),
        "infer" => cmd_infer(&rest).map(|()| false),
        "validate" => cmd_validate(&rest),
        "demo" => cmd_demo().map(|()| false),
        _ => return usage(),
    };
    match result {
        Ok(flagged) => {
            if flagged {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
