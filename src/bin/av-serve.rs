//! `av-serve` — the Auto-Validate validation service.
//!
//! Speaks the JSONL protocol (one request per line, one response per
//! line) over stdin/stdout or TCP, against a persistent service state
//! directory holding the pattern index and the rule catalog.
//!
//! ```sh
//! # pipe mode: one session over stdin/stdout
//! printf '%s\n' \
//!   '{"op":"ingest","columns":[{"name":"c","values":["10.0.0.1","10.0.0.2"]}]}' \
//!   '{"op":"infer","rule":"ips","values":["10.0.0.7","192.168.0.9"]}' \
//!   '{"op":"persist"}' \
//!   | av-serve --data state/
//!
//! # server mode: shared service, many concurrent clients
//! av-serve --data state/ --tcp 127.0.0.1:7171
//! ```
//!
//! On startup the service reloads `state/index.avix` and
//! `state/rules.avcat` when present; `{"op":"persist"}` writes them back.
//!
//! With `--durable`, every mutating op is write-ahead logged before it is
//! acknowledged and `persist` writes an incremental checkpoint; on start
//! the service recovers from the newest checkpoint plus the WAL tail, so
//! a kill at any moment loses no acknowledged op.

use av_service::{ServiceConfig, ValidationService};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  av-serve [--data DIR] [--workers N]             serve stdin/stdout (JSONL)
  av-serve [--data DIR] [--workers N] --tcp ADDR  serve TCP clients (JSONL)

options:
  --data DIR     state directory (index.avix + rules.avcat); reloaded on
                 start when present, written by the \"persist\" op
  --workers N    worker threads for validate_batch (default: all cores)
  --tcp ADDR     listen address, e.g. 127.0.0.1:7171 (port 0 picks a free
                 port and prints it)
  --max-request-bytes N
                 largest JSONL request line a TCP client may send before
                 it is disconnected with a protocol error (default 1 MiB)
  --max-connections N
                 admission cap for concurrent TCP connections; accepts
                 past the cap get one {{\"overloaded\":true}} frame and
                 are closed (default 10000; 0 = unlimited)
  --idle-timeout-ms N
                 close a TCP connection with no request activity and no
                 pending work after N ms (default 60000; 0 = never)
  --stall-deadline-ms N
                 drop a TCP connection whose peer accepts no response
                 bytes for N ms while output is pending (default 10000;
                 0 = never)
  --durable      crash-safe mode (requires --data): mutating ops are
                 write-ahead logged and fsynced before they are
                 acknowledged; \"persist\" writes an incremental
                 checkpoint; startup recovers checkpoint + WAL tail
  --wal-segment-bytes N
                 rotate WAL segments at N bytes (default 8 MiB)
  --checkpoint-every N
                 auto-checkpoint after N logged records (default 1024;
                 0 = only on explicit \"persist\")

protocol ops: ping, ingest, infer, infer_baseline, validate,
validate_batch, compare, catalog, rule, delete_rule, persist, stats,
shutdown"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServiceConfig::default();
    let mut tcp: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                let Some(dir) = args.get(i + 1) else {
                    return usage();
                };
                config.data_dir = Some(dir.into());
                i += 2;
            }
            "--workers" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.workers = n;
                i += 2;
            }
            "--tcp" => {
                let Some(addr) = args.get(i + 1) else {
                    return usage();
                };
                tcp = Some(addr.clone());
                i += 2;
            }
            "--max-request-bytes" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.max_request_bytes = n;
                i += 2;
            }
            "--max-connections" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.max_connections = n;
                i += 2;
            }
            "--idle-timeout-ms" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.idle_timeout_ms = n;
                i += 2;
            }
            "--stall-deadline-ms" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.stall_deadline_ms = n;
                i += 2;
            }
            "--durable" => {
                config.durability.enabled = true;
                i += 1;
            }
            "--wal-segment-bytes" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.durability.wal_segment_bytes = n;
                i += 2;
            }
            "--checkpoint-every" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                config.durability.checkpoint_every_records = n;
                i += 2;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if config.durability.enabled && config.data_dir.is_none() {
        eprintln!("av-serve: --durable requires --data DIR");
        return usage();
    }
    let service = match ValidationService::open(config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("av-serve: failed to open service state: {e}");
            return ExitCode::FAILURE;
        }
    };
    {
        let index = service.snapshot();
        eprintln!(
            "av-serve: ready ({} corpus columns, {} patterns, {} cataloged rules)",
            index.num_columns,
            index.len(),
            service.catalog_entries().len()
        );
    }

    let result = match tcp {
        Some(addr) => av_service::serve_tcp(Arc::clone(&service), addr.as_str(), |bound| {
            eprintln!("av-serve: listening on {bound}");
        }),
        None => av_service::serve_stdin(&service),
    };
    if let Err(e) = result {
        eprintln!("av-serve: transport error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
